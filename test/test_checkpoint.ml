module Sup = Spf_harness.Supervisor
module Journal = Spf_harness.Journal
module Bundle = Spf_harness.Bundle
module Figures = Spf_harness.Figures
module Driver = Spf_fuzz.Driver
module Replay = Spf_fuzz.Replay
module Gen = Spf_fuzz.Gen
module Rng = Spf_workloads.Rng

(* Durable campaign state: checkpoint journals (atomic, versioned,
   strictly validated) and self-contained crash bundles.  See
   docs/ROBUSTNESS.md for the on-disk formats. *)

let counter = ref 0

let fresh_dir () =
  incr counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "spf-ckpt-test-%d-%d" (Unix.getpid ()) !counter)
  in
  let rec rm path =
    if Sys.is_directory path then (
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path)
    else Sys.remove path
  in
  if Sys.file_exists d then rm d;
  d

let test_journal_roundtrip () =
  let dir = fresh_dir () in
  let j = Journal.start ~dir ~campaign:"test seed=1 count=3" in
  Alcotest.(check int) "fresh journal is empty" 0 (Journal.completed j);
  Journal.record j ~key:"cell/0" ~payload:"alpha";
  Journal.record j ~key:"cell/1" ~payload:"\x00binary\xffbytes\n";
  (* Reopen — as a resumed process would — and read everything back. *)
  let j2 = Journal.start ~dir ~campaign:"test seed=1 count=3" in
  Alcotest.(check int) "both cells survive reopen" 2 (Journal.completed j2);
  Alcotest.(check (option string))
    "text payload" (Some "alpha")
    (Journal.find j2 "cell/0");
  Alcotest.(check (option string))
    "binary payload round-trips exactly"
    (Some "\x00binary\xffbytes\n")
    (Journal.find j2 "cell/1");
  Alcotest.(check (option string))
    "unknown key" None (Journal.find j2 "cell/9")

let test_journal_campaign_mismatch () =
  let dir = fresh_dir () in
  let j = Journal.start ~dir ~campaign:"campaign A" in
  Journal.record j ~key:"cell/0" ~payload:"x";
  Alcotest.check_raises "different campaign is rejected, not merged"
    (Failure
       (Printf.sprintf
          "checkpoint journal %s belongs to a different campaign:\n\
          \  journal: campaign A\n  requested: campaign B"
          (Journal.file j)))
    (fun () -> ignore (Journal.start ~dir ~campaign:"campaign B"))

let expect_rejected what dir =
  match Journal.start ~dir ~campaign:"c" with
  | _ -> Alcotest.failf "%s journal was accepted" what
  | exception Failure _ -> ()

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_back path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_journal_corruption_rejected () =
  (* Garbage file. *)
  let dir = fresh_dir () in
  let j = Journal.start ~dir ~campaign:"c" in
  write_file (Journal.file j) "not a journal at all\n";
  expect_rejected "garbage" dir;
  (* Bit-flipped payload byte: the per-record checksum must catch it. *)
  let dir = fresh_dir () in
  let j = Journal.start ~dir ~campaign:"c" in
  Journal.record j ~key:"cell/0" ~payload:"payload";
  (let lines = String.split_on_char '\n' (read_back (Journal.file j)) in
   let flip line =
     (* The record line ends with the hex payload; nudge its last digit. *)
     let n = String.length line in
     let last = if line.[n - 1] = '0' then '1' else '0' in
     String.sub line 0 (n - 1) ^ String.make 1 last
   in
   let lines =
     List.mapi (fun i l -> if i = 2 then flip l else l) lines
   in
   write_file (Journal.file j) (String.concat "\n" lines));
  expect_rejected "bit-flipped" dir;
  (* Truncated mid-record, as a kill mid-write would NOT produce (writes
     are atomic renames) but a failing disk could. *)
  let dir = fresh_dir () in
  let j = Journal.start ~dir ~campaign:"c" in
  Journal.record j ~key:"cell/0" ~payload:"a long enough payload";
  let contents = read_back (Journal.file j) in
  write_file (Journal.file j)
    (String.sub contents 0 (String.length contents - 7));
  expect_rejected "truncated" dir

let test_bundle_roundtrip () =
  let root = fresh_dir () in
  let payload = "\x01\x02reproduction\x00recipe" in
  let d =
    Bundle.write ~root ~name:"case/7"
      ~meta:[ ("kind", "test"); ("note", "multi\nline value") ]
      ~ir:"func @f() { }" ~stats:"cycles=1" ~payload ()
  in
  Alcotest.(check string)
    "slashes flattened in the directory name" "case-7" (Filename.basename d);
  let b = Bundle.read d in
  Alcotest.(check (option string)) "meta" (Some "test") (Bundle.meta_value b "kind");
  Alcotest.(check (option string))
    "multi-line meta value" (Some "multi\nline value")
    (Bundle.meta_value b "note");
  Alcotest.(check (option string)) "ir" (Some "func @f() { }") (Bundle.ir b);
  Alcotest.(check (option string)) "stats" (Some "cycles=1") (Bundle.stats b);
  Alcotest.(check (option string)) "payload" (Some payload) (Bundle.payload b);
  (* Tampering with the payload must fail the checksum on read. *)
  write_file (Filename.concat d "payload.bin") "\x01\x02tampered\x00recipe";
  match Bundle.read d with
  | _ -> Alcotest.fail "tampered payload was accepted"
  | exception Failure _ -> ()

let summary = Alcotest.testable Driver.pp_summary ( = )

let opts ?policy ?(bundles = false) dir campaign =
  let journal = Journal.start ~dir ~campaign in
  let bundle_root =
    if bundles then Some (Filename.concat dir "bundles") else None
  in
  Sup.options ?policy ?bundle_root ~journal ()

let test_supervised_matches_raw () =
  (* Supervision is an execution wrapper: the campaign result must be
     exactly what the unsupervised driver produces. *)
  let raw = Driver.run ~seed:11 ~count:25 () in
  let sup =
    Driver.run ~seed:11 ~count:25
      ~supervise:(opts (fresh_dir ()) "fuzz seed=11 count=25")
      ()
  in
  Alcotest.check summary "supervised == raw" raw sup

let test_crash_then_resume_matches_raw () =
  let dir = fresh_dir () in
  let campaign = "fuzz seed=11 count=25" in
  let raw = Driver.run ~seed:11 ~count:25 () in
  (* First run: case 5 crashes deterministically -> incomplete campaign,
     a bundle, and a journal holding every other case. *)
  (match
     Driver.run ~seed:11 ~count:25 ~inject:(5, Driver.Crash)
       ~supervise:(opts ~bundles:true dir campaign)
       ()
   with
  | _ -> Alcotest.fail "injected crash must make the campaign incomplete"
  | exception Driver.Campaign_incomplete n ->
      Alcotest.(check int) "exactly the injected case failed" 1 n);
  let bundle_dir = Filename.concat (Filename.concat dir "bundles") "case-5" in
  let b = Bundle.read bundle_dir in
  Alcotest.(check (option string))
    "bundle records the crash class" (Some "deterministic")
    (Bundle.meta_value b "class");
  let j = Journal.start ~dir ~campaign in
  Alcotest.(check int)
    "all other cases are checkpointed" 24 (Journal.completed j);
  (* Resume without the fault: only case 5 re-runs, and the summary is
     byte-identical to an uninterrupted run. *)
  let resumed =
    Driver.run ~seed:11 ~count:25 ~supervise:(opts dir campaign) ()
  in
  Alcotest.check summary "resumed == raw" raw resumed;
  (* The replayed bundle no longer crashes (the fault was injected), so
     replay reports Clean rather than a divergence. *)
  match Replay.replay b with
  | Replay.Clean -> ()
  | Replay.Divergence d -> Alcotest.failf "unexpected divergence: %s" d
  | Replay.Undecided r -> Alcotest.failf "unexpected give-up: %s" r

let test_kill_mid_campaign_resume () =
  (* Simulate a kill after N cells by running a prefix campaign into the
     journal, then resuming the full campaign: recorded cells are
     substituted (resumed = true) and never re-executed. *)
  let dir = fresh_dir () in
  let campaign = "ints" in
  let encode (v : int) = Marshal.to_string v []
  and decode s = try Some (Marshal.from_string s 0 : int) with _ -> None in
  let executions = Array.make 6 0 in
  let job i =
    {
      Sup.key = Printf.sprintf "cell/%d" i;
      work =
        (fun _ctx ->
          executions.(i) <- executions.(i) + 1;
          100 + i);
      binfo = None;
    }
  in
  let first =
    Sup.run_jobs
      (opts dir campaign)
      ~encode ~decode
      (List.init 3 job)
  in
  Alcotest.(check int) "prefix all succeeded" 3 (List.length first);
  let second =
    Sup.run_jobs (opts dir campaign) ~encode ~decode (List.init 6 job)
  in
  let values, resumed_flags =
    List.split
      (List.map
         (function
           | Ok o -> (o.Sup.value, o.Sup.resumed)
           | Error _ -> Alcotest.fail "unexpected failure")
         second)
  in
  Alcotest.(check (list int))
    "values identical to an uninterrupted run"
    [ 100; 101; 102; 103; 104; 105 ]
    values;
  Alcotest.(check (list bool))
    "first three substituted from the journal"
    [ true; true; true; false; false; false ]
    resumed_flags;
  Alcotest.(check (list int))
    "journaled cells ran exactly once overall"
    [ 1; 1; 1; 1; 1; 1 ]
    (Array.to_list executions)

let test_fuzz_payload_roundtrip () =
  let spec = Gen.random (Rng.split ~seed:3 17) in
  let p = Replay.payload ~mode:(Spf_fuzz.Oracle.Concrete None) spec in
  let p' = Replay.decode_payload (Replay.encode_payload p) in
  Alcotest.(check bool) "spec survives encode/decode" true (p = p');
  Alcotest.check_raises "garbage payload rejected"
    (Failure
       "bundle payload does not decode as a fuzz case (incompatible build?)")
    (fun () -> ignore (Replay.decode_payload "garbage"))

let test_figure_cell_replay () =
  let cycles = Figures.replay_cell ~figure:"fig2" ~index:0 () in
  Alcotest.(check bool) "fig2 cell 0 simulates" true (cycles > 0);
  Alcotest.(check bool)
    "unknown figure rejected" true
    (match Figures.replay_cell ~figure:"fig99" ~index:0 () with
    | _ -> false
    | exception Failure _ -> true);
  Alcotest.(check bool)
    "out-of-range index rejected" true
    (match Figures.replay_cell ~figure:"fig2" ~index:9999 () with
    | _ -> false
    | exception Failure _ -> true)

let suite =
  [
    Alcotest.test_case "journal round-trips across reopen" `Quick
      test_journal_roundtrip;
    Alcotest.test_case "journal rejects a different campaign" `Quick
      test_journal_campaign_mismatch;
    Alcotest.test_case "corrupt and truncated journals rejected" `Quick
      test_journal_corruption_rejected;
    Alcotest.test_case "bundle round-trips and detects tampering" `Quick
      test_bundle_roundtrip;
    Alcotest.test_case "supervised fuzz summary equals raw" `Quick
      test_supervised_matches_raw;
    Alcotest.test_case "crash -> bundle -> resume -> identical summary"
      `Quick test_crash_then_resume_matches_raw;
    Alcotest.test_case "kill after N cells, resume skips them" `Quick
      test_kill_mid_campaign_resume;
    Alcotest.test_case "fuzz bundle payload round-trips" `Quick
      test_fuzz_payload_roundtrip;
    Alcotest.test_case "figure cells replay from the registry" `Quick
      test_figure_cell_replay;
  ]
