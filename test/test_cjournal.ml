(* The cache journal behind `spf serve --cache-journal`: the pass-entry
   codec round-trips arbitrary entries, an append/reopen cycle replays
   exactly what was written, a torn tail (the only damage a crash can
   inflict, by construction) is dropped and healed, and every other kind
   of damage — flipped payload bytes, a rewritten identity line — is
   refused loudly rather than half-loaded.  See docs/ROBUSTNESS.md. *)

module Rcache = Spf_serve.Rcache
module Cjournal = Spf_serve.Cjournal
module Pass = Spf_core.Pass
module Distance = Spf_core.Distance

(* ------------------------------------------------------------------ *)
(* Scratch directories. *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "spf-cj-test-%d-%d" (Unix.getpid ()) !n)
    in
    if Sys.file_exists d then
      Array.iter
        (fun f -> Sys.remove (Filename.concat d f))
        (Sys.readdir d)
    else Sys.mkdir d 0o755;
    d

let rm_rf d =
  if Sys.file_exists d then begin
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    Sys.rmdir d
  end

let with_dir f =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Pass-entry codec: round-trip over arbitrary entries.  Payload text
   (IR, report lines) contains newlines and arbitrary bytes; loop
   distances carry an optional slot; adaptive params are optional. *)

let ld_gen =
  QCheck.Gen.(
    let* header = int_bound 999 in
    let* distance = int_range 1 4096 in
    let* enabled = bool in
    let* dist_slot = opt (int_bound 7) in
    return { Pass.header; distance; enabled; dist_slot })

let entry_gen =
  QCheck.Gen.(
    let* tfunc_text = string_size (int_bound 200) in
    let* report_text = string_size (int_bound 120) in
    let* loop_distances = list_size (int_bound 4) ld_gen in
    let* adaptive =
      opt
        (let* window = int_range 1 1024 in
         let* min_c = int_range 1 64 in
         let* max_c = int_range 64 4096 in
         return { Distance.window; min_c; max_c })
    in
    return { Rcache.tfunc_text; report_text; loop_distances; adaptive })

let entry_arb = QCheck.make entry_gen

let prop_codec_round_trip =
  QCheck.Test.make ~name:"pass-entry codec round-trips" ~count:300 entry_arb
    (fun e ->
      match Rcache.decode_pass_entry (Rcache.encode_pass_entry e) with
      | None -> false
      | Some e' -> e' = e)

let prop_decode_never_raises =
  QCheck.Test.make ~name:"decode_pass_entry never raises" ~count:300
    QCheck.(string_gen QCheck.Gen.char)
    (fun s ->
      match Rcache.decode_pass_entry s with
      | Some _ | None -> true)

(* ------------------------------------------------------------------ *)
(* Journal: append / reopen replay round-trip. *)

let sample_records =
  [
    Cjournal.Sim ("sim:a", "R body\nS line\nV ok\n");
    Cjournal.Pass ("pass:b", "arbitrary \x00 payload\nbytes");
    Cjournal.Sim ("sim:c", "");
  ]

let test_replay_round_trip () =
  with_dir (fun dir ->
      let j = Cjournal.open_ ~dir in
      Alcotest.(check int) "fresh journal replays nothing" 0
        (List.length (Cjournal.replayed j));
      List.iter (Cjournal.append j) sample_records;
      Cjournal.close j;
      let j2 = Cjournal.open_ ~dir in
      Alcotest.(check bool) "no tail recovery" false (Cjournal.truncated j2);
      Alcotest.(check bool) "records replayed verbatim, oldest first" true
        (Cjournal.replayed j2 = sample_records);
      Alcotest.(check int) "pass count" 1 (Cjournal.replayed_pass j2);
      Alcotest.(check int) "sim count" 2 (Cjournal.replayed_sim j2);
      Cjournal.close j2)

let test_rejects_bad_key () =
  with_dir (fun dir ->
      let j = Cjournal.open_ ~dir in
      Fun.protect
        ~finally:(fun () -> Cjournal.close j)
        (fun () ->
          List.iter
            (fun key ->
              match Cjournal.append j (Cjournal.Sim (key, "x")) with
              | () -> Alcotest.fail ("accepted bad key " ^ String.escaped key)
              | exception Invalid_argument _ -> ())
            [ ""; "a b"; "a\nb" ]))

(* ------------------------------------------------------------------ *)
(* Torn tail: strip the trailing newline plus a few bytes — exactly the
   damage a mid-append SIGKILL can cause.  The journal must open, drop
   only the torn record, report the recovery, and leave the file whole
   (compacted) so the next open is clean. *)

let test_truncated_tail_recovered () =
  with_dir (fun dir ->
      let j = Cjournal.open_ ~dir in
      List.iter (Cjournal.append j) sample_records;
      Cjournal.close j;
      let path = Filename.concat dir "cache-journal" in
      let img = read_file path in
      write_file path (String.sub img 0 (String.length img - 5));
      let j2 = Cjournal.open_ ~dir in
      Alcotest.(check bool) "tail recovery reported" true
        (Cjournal.truncated j2);
      Alcotest.(check bool) "only the torn record dropped" true
        (Cjournal.replayed j2
        = [ List.nth sample_records 0; List.nth sample_records 1 ]);
      Alcotest.(check int) "healed by an immediate compaction" 1
        (Cjournal.compactions j2);
      Cjournal.close j2;
      (* The compaction rewrote a whole file: a third open is clean. *)
      let j3 = Cjournal.open_ ~dir in
      Alcotest.(check bool) "clean after heal" false (Cjournal.truncated j3);
      Alcotest.(check int) "two records survive" 2
        (List.length (Cjournal.replayed j3));
      Cjournal.close j3)

(* ------------------------------------------------------------------ *)
(* Anything but the torn tail is corruption and must refuse to load. *)

let expect_refusal name dir =
  match Cjournal.open_ ~dir with
  | j ->
      Cjournal.close j;
      Alcotest.fail (name ^ ": corrupt journal loaded")
  | exception Failure msg ->
      Alcotest.(check bool) (name ^ ": error tells the operator what to do")
        true
        (let sub = "delete it" in
         let n = String.length sub in
         let rec go i =
           i + n <= String.length msg
           && (String.sub msg i n = sub || go (i + 1))
         in
         go 0)

let test_checksum_corruption_rejected () =
  with_dir (fun dir ->
      let j = Cjournal.open_ ~dir in
      List.iter (Cjournal.append j) sample_records;
      Cjournal.close j;
      let path = Filename.concat dir "cache-journal" in
      let img = Bytes.of_string (read_file path) in
      (* Flip one payload byte of the *first* record (not the tail, so
         torn-tail tolerance cannot excuse it). *)
      let line_start =
        let i = String.index_from (Bytes.to_string img) 0 '\n' in
        String.index_from (Bytes.to_string img) (i + 1) '\n' + 1
      in
      let line_end = Bytes.index_from img line_start '\n' in
      let pos = line_end - 1 in
      Bytes.set img pos (if Bytes.get img pos = '0' then '1' else '0');
      write_file path (Bytes.to_string img);
      expect_refusal "flipped byte" dir)

let test_identity_mismatch_rejected () =
  with_dir (fun dir ->
      let j = Cjournal.open_ ~dir in
      List.iter (Cjournal.append j) sample_records;
      Cjournal.close j;
      let path = Filename.concat dir "cache-journal" in
      let img = read_file path in
      let lines = String.split_on_char '\n' img in
      let forged =
        List.mapi
          (fun i l ->
            if i = 1 then "identity " ^ String.make 32 'f' else l)
          lines
      in
      write_file path (String.concat "\n" forged);
      expect_refusal "stale identity" dir)

let test_garbage_header_rejected () =
  with_dir (fun dir ->
      let path = Filename.concat dir "cache-journal" in
      write_file path "not a journal\nat all\n";
      expect_refusal "garbage header" dir)

(* ------------------------------------------------------------------ *)
(* End to end through Rcache: insertions journal, a second cache on the
   same directory starts warm with byte-identical sim bodies. *)

let test_rcache_warm_start () =
  with_dir (fun dir ->
      let c = Rcache.create ~journal_dir:dir () in
      Rcache.add_sim c "k1" "body one\nline two\n";
      Rcache.add_sim c "k2" "body two\n";
      Rcache.add_pass c "p1"
        {
          Rcache.tfunc_text = "func f";
          report_text = "R report";
          loop_distances =
            [ { Pass.header = 3; distance = 64; enabled = true; dist_slot = Some 0 } ];
          adaptive = None;
        };
      Rcache.close_journal c;
      let c2 = Rcache.create ~journal_dir:dir () in
      let js = Rcache.journal_stats c2 in
      Alcotest.(check int) "sim entries replayed" 2 js.Rcache.replayed_sim;
      Alcotest.(check int) "pass entries replayed" 1 js.Rcache.replayed_pass;
      Alcotest.(check (option string)) "sim body byte-identical"
        (Some "body one\nline two\n")
        (Rcache.find_sim c2 "k1");
      (match Rcache.find_pass c2 "p1" with
      | None -> Alcotest.fail "pass entry lost across restart"
      | Some e ->
          Alcotest.(check string) "pass tfunc text survives" "func f"
            e.Rcache.tfunc_text;
          Alcotest.(check int) "loop distance survives" 64
            (List.hd e.Rcache.loop_distances).Pass.distance);
      Rcache.close_journal c2)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_codec_round_trip;
    QCheck_alcotest.to_alcotest prop_decode_never_raises;
    Alcotest.test_case "append/reopen replay round-trip" `Quick
      test_replay_round_trip;
    Alcotest.test_case "whitespace keys rejected" `Quick test_rejects_bad_key;
    Alcotest.test_case "torn tail dropped and healed" `Quick
      test_truncated_tail_recovered;
    Alcotest.test_case "flipped byte refuses to load" `Quick
      test_checksum_corruption_rejected;
    Alcotest.test_case "identity mismatch refuses to load" `Quick
      test_identity_mismatch_rejected;
    Alcotest.test_case "garbage header refuses to load" `Quick
      test_garbage_header_rejected;
    Alcotest.test_case "rcache warm start replays entries" `Quick
      test_rcache_warm_start;
  ]
