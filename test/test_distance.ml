module Distance = Spf_core.Distance
module Profdata = Spf_core.Profdata
module Config = Spf_core.Config
module Pass = Spf_core.Pass
module Benches = Spf_harness.Benches
module Profile_guided = Spf_harness.Profile_guided
module Runner = Spf_harness.Runner
module Machine = Spf_sim.Machine
module Tuner = Spf_sim.Tuner
module Workload = Spf_workloads.Workload

(* The distance-provider subsystem: provider decisions, the signed
   profile file format and its staleness rejection, the pass report's
   per-loop record, and the adaptive tuner's bit-determinism. *)

let choice = Alcotest.(pair int bool)
let as_pair (ch : Distance.choice) = (ch.c, ch.enabled)
let pick p ~header = as_pair (Distance.choose p ~default_c:64 ~header)

let test_choose () =
  let ck = Alcotest.check choice in
  ck "static uses Config.c" (64, true) (pick Distance.Static ~header:3);
  let fixed =
    Distance.Fixed
      { default_c = Some 32; per_loop = [ (3, 128); (5, 0); (6, -4) ] }
  in
  ck "fixed per-loop override" (128, true) (pick fixed ~header:3);
  ck "fixed 0 disables the loop" (0, false) (pick fixed ~header:5);
  ck "fixed negative disables too" (0, false) (pick fixed ~header:6);
  ck "fixed falls back to its default" (32, true) (pick fixed ~header:9);
  ck "fixed without default uses Config.c" (64, true)
    (pick (Distance.Fixed { default_c = None; per_loop = [] }) ~header:3);
  let profile =
    Distance.Profile
      {
        per_loop =
          [
            (3, { Distance.c = 48; enabled = true });
            (4, { Distance.c = 0; enabled = false });
          ];
      }
  in
  ck "profiled loop uses its choice" (48, true) (pick profile ~header:3);
  ck "profiled-off loop stays off" (0, false) (pick profile ~header:4);
  ck "unprofiled loop falls back to eq. 1" (64, true) (pick profile ~header:9);
  ck "adaptive seeds with Config.c" (64, true)
    (pick (Distance.Adaptive Distance.default_adaptive) ~header:3)

(* ------------------------------------------------------------------ *)
(* Profile files: round-trip, and the three rejection axes (version,
   program signature, machine model). *)

let is_func () =
  let b = (Benches.is_bench ()).Benches.plain () in
  b.Workload.func

let sample_profile func =
  Profdata.make ~func ~machine:"Haswell" ~default_c:64
    ~loops:
      [
        { Profdata.header = 1; c = 128; enabled = true; accesses = 10; misses = 5 };
        { Profdata.header = 2; c = 0; enabled = false; accesses = 0; misses = 0 };
      ]

let with_temp f =
  let path = Filename.temp_file "spf-prof" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_profdata_roundtrip () =
  let func = is_func () in
  let pd = sample_profile func in
  with_temp (fun path ->
      Profdata.save path pd;
      match Profdata.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok pd' ->
          Alcotest.(check bool) "round-trips exactly" true (pd = pd');
          (match Profdata.check pd' ~func ~machine:"Haswell" with
          | Ok () -> ()
          | Error e -> Alcotest.failf "check of a fresh profile failed: %s" e);
          (* The signature is stable across rebuilds of the same program. *)
          (match Profdata.check pd' ~func:(is_func ()) ~machine:"Haswell" with
          | Ok () -> ()
          | Error e -> Alcotest.failf "rebuild changed the signature: %s" e);
          let provider = Profdata.provider pd' in
          Alcotest.check choice "loops become Profile choices" (128, true)
            (pick provider ~header:1);
          Alcotest.check choice "disabled loops carried through" (0, false)
            (pick provider ~header:2))

let expect_error name = function
  | Ok () -> Alcotest.failf "%s: expected rejection" name
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s names the problem (%s)" name msg)
        true
        (String.length msg > 10)

let test_profdata_rejects_mismatch () =
  let func = is_func () in
  let pd = sample_profile func in
  let cg =
    let b = (Benches.cg_bench ()).Benches.plain () in
    b.Workload.func
  in
  expect_error "different program" (Profdata.check pd ~func:cg ~machine:"Haswell");
  expect_error "different machine" (Profdata.check pd ~func ~machine:"A53")

let replace_once ~sub ~by s =
  let n = String.length s and m = String.length sub in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> s
  | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + m) (n - (i + m))

let test_profdata_rejects_stale_version () =
  let func = is_func () in
  with_temp (fun path ->
      Profdata.save path (sample_profile func);
      let ic = open_in path in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      let bumped =
        replace_once ~sub:"\"version\": 1" ~by:"\"version\": 99" text
      in
      Alcotest.(check bool) "fixture rewrote the version" true (bumped <> text);
      let oc = open_out path in
      output_string oc bumped;
      close_out oc;
      match Profdata.load path with
      | Ok _ -> Alcotest.fail "stale version accepted"
      | Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "names the version (%s)" msg)
            true (String.length msg > 10))

let test_profdata_load_missing () =
  match Profdata.load "/nonexistent/spf-profile.json" with
  | Ok _ -> Alcotest.fail "loaded a missing file"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* The pass report's per-loop distance record. *)

let test_report_records_distances () =
  let b = (Benches.is_bench ()).Benches.plain () in
  let _, report = Benches.auto_with_report b in
  Alcotest.(check bool) "at least one loop recorded" true
    (report.Pass.loop_distances <> []);
  List.iter
    (fun (ld : Pass.loop_distance) ->
      Alcotest.(check bool) "static decisions: enabled, eq. 1 c, no register"
        true
        (ld.enabled
        && ld.distance = Config.default.Config.c
        && ld.dist_slot = None))
    report.Pass.loop_distances;
  Alcotest.(check bool) "no adaptive params on a static run" true
    (report.Pass.adaptive = None)

let test_fixed_disable_suppresses_prefetches () =
  (* Find the loop header from a throwaway static application, then
     disable exactly that loop via a Fixed provider. *)
  let probe = (Benches.is_bench ()).Benches.plain () in
  let _, r0 = Benches.auto_with_report probe in
  let header = (List.hd r0.Pass.loop_distances).Pass.header in
  let b = (Benches.is_bench ()).Benches.plain () in
  let config =
    Config.with_provider
      (Distance.Fixed { default_c = None; per_loop = [ (header, 0) ] })
      Config.default
  in
  let b, report = Benches.auto_with_report ~config b in
  let ld =
    List.find (fun (ld : Pass.loop_distance) -> ld.header = header)
      report.Pass.loop_distances
  in
  Alcotest.(check bool) "recorded as disabled" false ld.Pass.enabled;
  Alcotest.(check int) "no prefetches emitted" 0
    (Helpers.count_prefetches b.Workload.func)

(* ------------------------------------------------------------------ *)
(* Adaptive bit-determinism: same program + config => identical cycle
   count AND identical per-window decision traces, run after run. *)

let run_adaptive () =
  let config =
    Config.with_provider (Distance.Adaptive Distance.default_adaptive)
      Config.default
  in
  let b, report =
    Benches.auto_with_report ~config ((Benches.is_bench ()).Benches.plain ())
  in
  let tuner =
    Profile_guided.tuner_of_report ~machine:Machine.haswell b.Workload.func
      report
  in
  let r = Runner.run ?tuner ~machine:Machine.haswell b in
  match tuner with
  | None -> Alcotest.fail "adaptive pass produced no tuner"
  | Some tu -> (Runner.cycles r, Tuner.windows tu, Tuner.chosen tu)

let test_adaptive_deterministic () =
  let c1, w1, t1 = run_adaptive () in
  let c2, w2, t2 = run_adaptive () in
  Alcotest.(check int) "cycles identical" c1 c2;
  Alcotest.(check int) "window count identical" w1 w2;
  Alcotest.(check bool) "decision traces identical" true (t1 = t2);
  Alcotest.(check bool) "the tuner actually re-tuned" true
    (w1 > 0 && List.exists (fun (_, trace) -> List.length trace > 1) t1)

let suite =
  [
    Alcotest.test_case "provider choose semantics" `Quick test_choose;
    Alcotest.test_case "profdata round-trip" `Quick test_profdata_roundtrip;
    Alcotest.test_case "profdata rejects mismatches" `Quick
      test_profdata_rejects_mismatch;
    Alcotest.test_case "profdata rejects stale version" `Quick
      test_profdata_rejects_stale_version;
    Alcotest.test_case "profdata load missing file" `Quick
      test_profdata_load_missing;
    Alcotest.test_case "report records loop distances" `Quick
      test_report_records_distances;
    Alcotest.test_case "fixed 0 disables a loop" `Quick
      test_fixed_disable_suppresses_prefetches;
    Alcotest.test_case "adaptive is bit-deterministic" `Quick
      test_adaptive_deterministic;
  ]
