module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Memory = Spf_sim.Memory
module Interp = Spf_sim.Interp
module Machine = Spf_sim.Machine
module Stats = Spf_sim.Stats
module Engine = Spf_sim.Engine
module Compile = Spf_sim.Compile
module Benches = Spf_harness.Benches
module Runner = Spf_harness.Runner

(* Cross-engine equivalence: the compiled (closure) engine and the
   micro-op tape engine must both be bit-identical to the classic
   interpreter — same return value, same fourteen stats counters, same
   traps and same fuel behaviour — on fused-GEP code, intrinsic calls,
   both timing models, and the real benchmark kernels. *)

let run_with ~engine ?(machine = Machine.haswell) ?(fuel = 10_000_000)
    ~mem ~args func =
  let interp = Interp.create ~machine ~engine ~mem ~args func in
  Interp.run ~fuel interp;
  (Interp.retval interp, Interp.stats interp)

(* Run [build] (a fresh memory/args/func per engine so no run sees
   another's side effects) under every engine and insist on equality
   with the classic interpreter, naming the engine and the first
   diverging stats counter in the failure message. *)
let check_both ?machine ?fuel ~what build =
  let run engine =
    let mem, args, func = build () in
    run_with ~engine ?machine ?fuel ~mem ~args func
  in
  let ret_i, st_i = run Engine.Interp in
  List.iter
    (fun engine ->
      let name = Engine.to_string engine in
      let ret_e, st_e = run engine in
      if ret_i <> ret_e then
        Alcotest.failf "%s: retval differs: interp=%s %s=%s" what
          (match ret_i with Some v -> string_of_int v | None -> "none")
          name
          (match ret_e with Some v -> string_of_int v | None -> "none");
      match Stats.first_mismatch st_i st_e with
      | None -> ()
      | Some (field, i, e) ->
          Alcotest.failf "%s: stats diverge at %s: interp=%d %s=%d" what field
            i name e)
    [ Engine.Compiled; Engine.Tape ]

let test_sum_kernel () =
  check_both ~what:"sum kernel" (fun () ->
      let mem = Memory.create () in
      let base = Memory.alloc_i32_array mem (Array.init 500 (fun i -> i)) in
      (mem, [| base |], Helpers.sum_kernel ~n:500))

let test_fused_gep_store () =
  (* b[a[i]]++ : both the load and the store consume single-use GEPs, so
     this exercises the compiled engine's fused micro-ops on both paths. *)
  check_both ~what:"is-like kernel (fused geps)" (fun () ->
      let mem = Memory.create () in
      let n = 256 in
      let rng = Spf_workloads.Rng.create ~seed:7 in
      let a =
        Memory.alloc_i32_array mem
          (Array.init n (fun _ -> Spf_workloads.Rng.int rng n))
      in
      let tgt = Memory.alloc mem (4 * n) in
      (mem, [| a; tgt |], Helpers.is_like_kernel ~n))

let test_unfused_gep () =
  (* A GEP with two consumers must not be fused; both engines still agree. *)
  check_both ~what:"multi-use gep" (fun () ->
      let mem = Memory.create () in
      let base = Memory.alloc_i32_array mem [| 11; 22; 33 |] in
      let b = Builder.create ~name:"t" ~nparams:1 in
      let p = Builder.param b 0 in
      let g = Builder.gep b p (Ir.Imm 1) 4 in
      let v = Builder.load b Ir.I32 g in
      Builder.store b Ir.I32 g (Builder.add b v (Ir.Imm 1));
      let v2 = Builder.load b Ir.I32 g in
      Builder.ret b (Some v2);
      (mem, [| base |], Builder.finish b))

let test_in_order_machine () =
  check_both ~machine:Machine.a53 ~what:"in-order timing model" (fun () ->
      let mem = Memory.create () in
      let n = 512 in
      let rng = Spf_workloads.Rng.create ~seed:3 in
      let a =
        Memory.alloc_i32_array mem
          (Array.init n (fun _ -> Spf_workloads.Rng.int rng (1 lsl 16)))
      in
      let tgt = Memory.alloc mem (4 * (1 lsl 16)) in
      (mem, [| a; tgt |], Helpers.is_like_kernel ~n))

let test_benches_agree () =
  (* The real kernels, plain and pass-transformed (the latter adds the
     prefetch intrinsics and address-computation slices).  The golden
     suite already pins IS/CG/RA/HJ bit-exactly under both engines, so
     this only runs the benches golden leaves out (the Graph500 BFS,
     whose data-dependent traversal is the shape golden lacks). *)
  List.iter
    (fun (b : Benches.bench) ->
      List.iter
        (fun (variant, build) ->
          (* [Runner.run] validates the result checksum internally, so a
             value divergence would already fail the run; what's left to
             compare is the timing/stats fingerprint. *)
          let r_i = Runner.run ~engine:Engine.Interp ~machine:Machine.haswell (build ()) in
          List.iter
            (fun engine ->
              let r_e = Runner.run ~engine ~machine:Machine.haswell (build ()) in
              match Stats.first_mismatch r_i.Runner.stats r_e.Runner.stats with
              | None -> ()
              | Some (field, i, e) ->
                  Alcotest.failf
                    "%s/%s: engine divergence at %s: interp=%d %s=%d" b.id
                    variant field i
                    (Engine.to_string engine)
                    e)
            [ Engine.Compiled; Engine.Tape ])
        [
          ("plain", fun () -> b.plain ());
          ("auto", fun () -> Benches.auto (b.plain ()));
        ])
    (List.filter
       (fun (b : Benches.bench) -> b.id = "G500-s16")
       (Benches.all ()))

let test_trap_identical () =
  let build () =
    let b = Builder.create ~name:"t" ~nparams:0 in
    let v = Builder.load b Ir.I64 (Ir.Imm max_int) in
    Builder.ret b (Some v);
    Builder.finish b
  in
  let fault engine =
    match
      run_with ~engine ~mem:(Memory.create ()) ~args:[||] (build ())
    with
    | _ -> Alcotest.fail "out-of-range load did not trap"
    | exception Interp.Trap f -> f
  in
  let fi = fault Engine.Interp in
  List.iter
    (fun engine ->
      let fc = fault engine in
      Alcotest.(check int) "same faulting pc" fi.Interp.pc fc.Interp.pc;
      Alcotest.(check int) "same faulting addr" fi.Interp.addr fc.Interp.addr;
      Alcotest.(check int) "same faulting width" fi.Interp.width fc.Interp.width;
      Alcotest.(check bool)
        "same access kind" fi.Interp.is_store fc.Interp.is_store)
    [ Engine.Compiled; Engine.Tape ]

let test_fuel_identical () =
  let build () =
    let b = Builder.create ~name:"spin" ~nparams:0 in
    let head = Builder.new_block b "head" in
    Builder.br b head;
    Builder.set_block b head;
    Builder.br b head;
    Builder.finish b
  in
  List.iter
    (fun engine ->
      match
        run_with ~engine ~fuel:1000 ~mem:(Memory.create ()) ~args:[||]
          (build ())
      with
      | _ -> Alcotest.failf "%s: infinite loop terminated" (Engine.to_string engine)
      | exception Interp.Fuel_exhausted -> ())
    Engine.all

let test_intrinsic_identical () =
  let build () =
    let b = Builder.create ~name:"t" ~nparams:1 in
    let v = Builder.call b ~pure:true "triple" [ Builder.param b 0 ] in
    Builder.ret b (Some v);
    Builder.finish b
  in
  List.iter
    (fun engine ->
      let interp =
        Interp.create ~machine:Machine.haswell ~engine ~mem:(Memory.create ())
          ~args:[| 14 |] (build ())
      in
      Interp.register_intrinsic interp "triple" (fun args -> 3 * args.(0));
      Interp.run interp;
      Alcotest.(check (option int))
        (Engine.to_string engine ^ " intrinsic result")
        (Some 42) (Interp.retval interp))
    Engine.all

let test_decode_cache_hits () =
  (* Two structurally identical functions (fresh Builder each time, so
     physical identity differs) must decode once: the second [create]
     hits the per-domain cache via the structural signature. *)
  let hits0, _ = Compile.cache_counters () in
  let mk () =
    let mem = Memory.create () in
    let base = Memory.alloc_i32_array mem (Array.init 16 (fun i -> i)) in
    run_with ~engine:Engine.Compiled ~mem ~args:[| base |]
      (Helpers.sum_kernel ~n:16)
  in
  let r1 = mk () in
  let r2 = mk () in
  Alcotest.(check bool) "same result" true (r1 = r2);
  let hits1, _ = Compile.cache_counters () in
  Alcotest.(check bool) "decode cache hit recorded" true (hits1 > hits0)

let suite =
  [
    Alcotest.test_case "sum kernel" `Quick test_sum_kernel;
    Alcotest.test_case "fused geps" `Quick test_fused_gep_store;
    Alcotest.test_case "multi-use gep unfused" `Quick test_unfused_gep;
    Alcotest.test_case "in-order machine" `Quick test_in_order_machine;
    Alcotest.test_case "benches agree" `Slow test_benches_agree;
    Alcotest.test_case "traps identical" `Quick test_trap_identical;
    Alcotest.test_case "fuel identical" `Quick test_fuel_identical;
    Alcotest.test_case "intrinsics identical" `Quick test_intrinsic_identical;
    Alcotest.test_case "decode cache hits" `Quick test_decode_cache_hits;
  ]
