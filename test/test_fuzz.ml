module Pass = Spf_core.Pass
module Diag = Spf_core.Diag
module Config = Spf_core.Config
module Gen = Spf_fuzz.Gen
module Oracle = Spf_fuzz.Oracle
module Shrink = Spf_fuzz.Shrink
module Driver = Spf_fuzz.Driver
module Rng = Spf_workloads.Rng

(* The differential-fuzzing harness itself: the default pass survives a
   campaign untouched, no exception ever escapes [Pass.run], the §4.4
   drop path is genuinely exercised, and — as a negative control — the
   oracle catches real clamp failures and shrinks them to a minimal
   reproducer when the clamp is deliberately disabled. *)

let test_campaign_clean () =
  let s = Driver.run ~seed:42 ~count:200 () in
  Alcotest.(check int) "zero divergences" 0 (List.length s.Driver.failures);
  Alcotest.(check int) "zero introduced faults" 0 s.Driver.introduced_faults;
  Alcotest.(check bool) "most programs transformed" true (s.Driver.transformed > 100);
  (* Wild prefetches must have hit the non-faulting drop path: the
     campaign actually exercises §4.4, it doesn't just avoid it. *)
  Alcotest.(check bool) "drops observed" true (s.Driver.dropped_prefetches > 0);
  Alcotest.(check bool) "prefetches issued" true (s.Driver.sw_prefetches > 0)

let test_pass_never_raises_and_never_crashes_internally () =
  (* Stronger than the oracle's catch-all: not only must nothing escape,
     nothing may be *contained* either — an error-severity diag in the
     report is a crash the Diag machinery swallowed. *)
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 100 do
    let spec = Gen.random rng in
    let b = Gen.build spec in
    match Pass.run b.Gen.func with
    | report ->
        List.iter
          (fun (d : Diag.t) ->
            if d.Diag.severity = Diag.Error then
              Alcotest.failf "internal failure contained on %s: %s"
                (Gen.to_string spec) (Diag.to_string d))
          report.Pass.diags
    | exception exn ->
        Alcotest.failf "Pass.run raised on %s: %s" (Gen.to_string spec)
          (Printexc.to_string exn)
  done

let test_strict_mode_clean_on_generated_programs () =
  (* ~strict only escalates internal errors; healthy inputs (including
     ones the pass declines) must run strict without raising. *)
  let rng = Rng.create ~seed:10 in
  for _ = 1 to 50 do
    let spec = Gen.random rng in
    let b = Gen.build spec in
    ignore (Pass.run ~strict:true b.Gen.func)
  done

let no_clamp_config =
  (* assume_margin skips the §4.2 clamp; sound only after Split has peeled
     the loop tail, which the fuzz programs have NOT done — so on tight
     specs the look-ahead load must walk off the end of the index array. *)
  { Config.default with Config.assume_margin = max_int }

let test_oracle_catches_clamp_failures () =
  let s = Driver.run ~config:no_clamp_config ~seed:3 ~count:60 () in
  Alcotest.(check bool) "divergences found" true (s.Driver.failures <> []);
  Alcotest.(check bool) "attributed to pass-inserted instructions" true
    (s.Driver.introduced_faults > 0)

let test_shrinker_minimises_clamp_failures () =
  let fails spec =
    match Oracle.check ~config:no_clamp_config spec with
    | Oracle.Diverged _ -> true
    | Oracle.Agree _ | Oracle.Undecided _ -> false
  in
  (* A known-failing spec under the clamp-free config. *)
  let big =
    {
      Gen.shape = Gen.Hash_indirect;
      n = 178;
      inner = 8;
      len_a = 64;
      bound = Gen.Bound_loaded;
      tight = true;
      alias_store = false;
      hash_depth = 2;
      data_seed = 807468;
    }
  in
  Alcotest.(check bool) "seed case fails" true (fails big);
  let small = Shrink.shrink big ~still_fails:fails in
  Alcotest.(check bool) "shrunk case still fails" true (fails small);
  Alcotest.(check bool) "shrunk to the core shape" true
    (small.Gen.shape = Gen.Indirect);
  Alcotest.(check bool) "trip count minimised" true (small.Gen.n <= 2);
  Alcotest.(check bool) "tightness kept (it is load-bearing)" true
    small.Gen.tight

let test_alias_stores_rejected_in_campaign () =
  (* Specs that store through the index array must never yield a prefetch
     chain through it: §4.2's store-alias scan.  (The oracle already
     guarantees semantics; this pins the *reason*.) *)
  let rng = Rng.create ~seed:11 in
  let checked = ref 0 in
  while !checked < 20 do
    let spec = { (Gen.random rng) with Gen.alias_store = true } in
    match spec.Gen.shape with
    | Gen.Nested | Gen.Wild_prefetch -> ()  (* no alias store in body *)
    | _ ->
        incr checked;
        let b = Gen.build spec in
        let report = Pass.run b.Gen.func in
        let indirect_emitted =
          List.exists
            (fun (_, d) ->
              match d with
              | Pass.Emitted gs ->
                  (* Emitted groups may only target the stride companion
                     (offset over the index array itself), never a chain
                     of depth > 1 through stored-to memory. *)
                  List.exists
                    (fun (g : Spf_core.Codegen.emitted) ->
                      List.length g.Spf_core.Codegen.support_ids > 0)
                    gs
              | _ -> false)
            report.Pass.decisions
        in
        Alcotest.(check bool)
          ("no indirect chain through a stored-to array: " ^ Gen.to_string spec)
          false indirect_emitted
  done

let test_rebuild_is_deterministic () =
  let rng = Rng.create ~seed:12 in
  for _ = 1 to 20 do
    let spec = Gen.random rng in
    let b1 = Gen.build spec and b2 = Gen.build spec in
    let o1, _ = Oracle.execute ~fuel:(Gen.fuel spec) b1 in
    let o2, _ = Oracle.execute ~fuel:(Gen.fuel spec) b2 in
    Alcotest.(check string)
      ("deterministic rebuild: " ^ Gen.to_string spec)
      (Oracle.outcome_to_string o1) (Oracle.outcome_to_string o2)
  done

let suite =
  [
    Alcotest.test_case "200-case campaign is clean" `Quick test_campaign_clean;
    Alcotest.test_case "pass never raises nor crashes internally" `Quick
      test_pass_never_raises_and_never_crashes_internally;
    Alcotest.test_case "strict mode clean on generated programs" `Quick
      test_strict_mode_clean_on_generated_programs;
    Alcotest.test_case "oracle catches clamp failures" `Quick
      test_oracle_catches_clamp_failures;
    Alcotest.test_case "shrinker minimises clamp failures" `Quick
      test_shrinker_minimises_clamp_failures;
    Alcotest.test_case "alias stores never yield indirect chains" `Quick
      test_alias_stores_rejected_in_campaign;
    Alcotest.test_case "rebuild from spec is deterministic" `Quick
      test_rebuild_is_deterministic;
  ]
