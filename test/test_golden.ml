module Machine = Spf_sim.Machine
module Stats = Spf_sim.Stats
module Benches = Spf_harness.Benches
module Runner = Spf_harness.Runner
module Workload = Spf_workloads.Workload
module Distance = Spf_core.Distance

(* Golden timing numbers for the interpreter hot path.

   These (cycles, instructions, loads, sw_prefetches) tuples were captured
   from the simulator BEFORE the PR-2 hot-path refactor (precomputed phi
   edge copies, resolved-at-create intrinsic table, min-heap multicore
   scheduling) and must stay bit-identical forever after: the refactors
   are pure strength reductions with no licence to move a single cycle.
   One out-of-order machine (Haswell) and one in-order machine (A53) cover
   both timing models. *)

let golden =
  [
    ("Haswell", "IS", "plain", (4692828, 2621446, 524288, 0));
    ("Haswell", "IS", "auto", (3550570, 5242886, 786432, 524288));
    ("Haswell", "CG", "plain", (5897373, 11894796, 2621440, 0));
    ("Haswell", "CG", "auto", (4622823, 17203212, 3145728, 1081344));
    ("Haswell", "RA", "plain", (5721725, 5263367, 524288, 0));
    ("Haswell", "RA", "auto", (4874463, 8146951, 786432, 524288));
    ("Haswell", "HJ-2", "plain", (2682473, 3014662, 524288, 0));
    ("Haswell", "HJ-2", "auto", (1629188, 4587526, 524288, 262144));
    ("Haswell", "HJ-8", "plain", (19812120, 4653062, 851968, 0));
    ("Haswell", "HJ-8", "auto", (11968630, 5963782, 917504, 327680));
    ("Haswell", "HJ-8", "manual", (4112932, 7077894, 1245184, 262144));
    ("A53", "IS", "plain", (76473346, 2621446, 524288, 0));
    ("A53", "IS", "auto", (31633087, 5242886, 786432, 524288));
    ("A53", "CG", "plain", (55043678, 11894796, 2621440, 0));
    ("A53", "CG", "auto", (38719988, 17203212, 3145728, 1081344));
    ("A53", "RA", "plain", (78883742, 5263367, 524288, 0));
    ("A53", "RA", "auto", (40970064, 8146951, 786432, 524288));
    ("A53", "HJ-2", "plain", (38360852, 3014662, 524288, 0));
    ("A53", "HJ-2", "auto", (16397810, 4587526, 524288, 262144));
    ("A53", "HJ-8", "plain", (56465625, 4653062, 851968, 0));
    ("A53", "HJ-8", "auto", (42724759, 5963782, 917504, 327680));
    ("A53", "HJ-8", "manual", (24926651, 7077894, 1245184, 262144));
    (* Distance-provider rows (PR 7): the pass under a Fixed provider at
       two explicit look-aheads, and under the Adaptive provider with the
       windowed tuner attached.  Adaptive is bit-deterministic for a fixed
       program + config — the tuner ticks at retired demand loads, which
       all three engines count identically — so its rows pin exact
       numbers like every other. *)
    ("Haswell", "IS", "fixed16", (5238351, 5242886, 786432, 524288));
    ("Haswell", "IS", "fixed128", (3548215, 5242886, 786432, 524288));
    ("Haswell", "IS", "adaptive", (3562744, 6029319, 786432, 524288));
    ("Haswell", "HJ-2", "fixed16", (2423897, 4587526, 524288, 262144));
    ("Haswell", "HJ-2", "fixed128", (1629134, 4587526, 524288, 262144));
    ("Haswell", "HJ-2", "adaptive", (1671057, 4980743, 524288, 262144));
    ("A53", "IS", "fixed16", (31625887, 5242886, 786432, 524288));
    ("A53", "IS", "fixed128", (31629939, 5242886, 786432, 524288));
    ("A53", "IS", "adaptive", (31629215, 6029319, 786432, 524288));
    ("A53", "HJ-2", "fixed16", (16397765, 4587526, 524288, 262144));
    ("A53", "HJ-2", "fixed128", (16403357, 4587526, 524288, 262144));
    ("A53", "HJ-2", "adaptive", (16402388, 4980743, 524288, 262144));
  ]

let machine_of = function
  | "Haswell" -> Machine.haswell
  | "A53" -> Machine.a53
  | m -> Alcotest.failf "unknown golden machine %s" m

let bench_of id =
  match
    List.find_opt (fun (b : Benches.bench) -> b.id = id) (Benches.all ())
  with
  | Some b -> b
  | None -> Alcotest.failf "unknown golden bench %s" id

let with_provider p = Spf_core.Config.with_provider p Spf_core.Config.default

let fixed_at c (b : Benches.bench) =
  Benches.auto
    ~config:(with_provider (Distance.Fixed { default_c = Some c; per_loop = [] }))
    (b.plain ())

let adaptive ~machine (b : Benches.bench) =
  let built, report =
    Benches.auto_with_report
      ~config:(with_provider (Distance.Adaptive Distance.default_adaptive))
      (b.plain ())
  in
  ( built,
    Spf_harness.Profile_guided.tuner_of_report ~machine built.Workload.func
      report )

(* Returns the built workload plus the tuner the adaptive variant needs
   attached to its run. *)
let build ~machine (b : Benches.bench) = function
  | "plain" -> (b.plain (), None)
  | "auto" -> (Benches.auto (b.plain ()), None)
  | "manual" -> (b.manual ~machine ~c:None, None)
  | "fixed16" -> (fixed_at 16 b, None)
  | "fixed128" -> (fixed_at 128 b, None)
  | "adaptive" -> adaptive ~machine b
  | v -> Alcotest.failf "unknown golden variant %s" v

(* On a mismatch, fail with the first differing counter spelled out
   (golden vs simulated, with the row identified) rather than a raw
   assert — a regression should read as a sentence in the test log. *)
let check_one ~engine (mname, bid, variant, (cycles, insts, loads, swpf)) () =
  let machine = machine_of mname in
  let built, tuner = build ~machine (bench_of bid) variant in
  let r = Runner.run ~engine ?tuner ~machine built in
  let s = r.Runner.stats in
  let mismatch =
    List.find_opt
      (fun (_, want, got) -> want <> got)
      [
        ("cycles", cycles, s.Stats.cycles);
        ("instructions", insts, s.Stats.instructions);
        ("loads", loads, s.Stats.loads);
        ("sw_prefetches", swpf, s.Stats.sw_prefetches);
      ]
  in
  match mismatch with
  | None -> ()
  | Some (field, want, got) ->
      Alcotest.failf
        "golden divergence on %s/%s/%s (--engine=%s): %s golden=%d got=%d"
        mname bid variant
        (Spf_sim.Engine.to_string engine)
        field want got

(* Every golden row runs under ALL THREE execution engines
   (interp/compiled/tape): the pre-decoded engines must land on the same
   cycle, not just the same answer — the distance-provider rows included,
   which additionally pin the adaptive tuner's bit-determinism. *)
let suite =
  List.concat_map
    (fun engine ->
      List.map
        (fun ((mname, bid, variant, _) as row) ->
          Alcotest.test_case
            (Printf.sprintf "%s/%s/%s/%s" mname bid variant
               (Spf_sim.Engine.to_string engine))
            `Slow
            (check_one ~engine row))
        golden)
    Spf_sim.Engine.all
