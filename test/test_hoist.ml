module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Pass = Spf_core.Pass
module Hoist = Spf_core.Hoist
module Analysis = Spf_core.Analysis
module Loops = Spf_ir.Loops
module Memory = Spf_sim.Memory

(* §4.6 loop hoisting: inner-loop loads whose address is seeded by an
   outer-loop value get a prefetch in the preheader. *)

(* Outer loop walks a pointer array; inner loop chases each list:
     for i in 0..n: p = heads[i]; while p != 0: sum += *p; p = *(p+8) *)
let list_walk_kernel ~n =
  let b = Builder.create ~name:"walk" ~nparams:1 in
  let heads = Builder.param b 0 in
  let ohead = Builder.new_block b "o.head" in
  let obody = Builder.new_block b "o.body" in
  let oexit = Builder.new_block b "o.exit" in
  let entry = Builder.current_block b in
  Builder.br b ohead;
  Builder.set_block b ohead;
  let i = Builder.phi ~name:"i" b [ (entry, Ir.Imm 0) ] in
  let sum = Builder.phi ~name:"sum" b [ (entry, Ir.Imm 0) ] in
  let c = Builder.cmp b Ir.Slt i (Ir.Imm n) in
  Builder.cbr b c obody oexit;
  Builder.set_block b obody;
  let head = Builder.load ~name:"head" b Ir.I64 (Builder.gep b heads i 8) in
  let whead = Builder.new_block b "w.head" in
  let wbody = Builder.new_block b "w.body" in
  let wexit = Builder.new_block b "w.exit" in
  Builder.br b whead;
  Builder.set_block b whead;
  let p = Builder.phi ~name:"p" b [ (obody, head) ] in
  let ws = Builder.phi ~name:"ws" b [ (obody, sum) ] in
  let wc = Builder.cmp b Ir.Ne p (Ir.Imm 0) in
  Builder.cbr b wc wbody wexit;
  Builder.set_block b wbody;
  let v = Builder.load ~name:"pv" b Ir.I64 p in
  let ws' = Builder.add b ws v in
  let nxt = Builder.load ~name:"pn" b Ir.I64 (Builder.gep b p (Ir.Imm 1) 8) in
  Builder.br b whead;
  Builder.add_incoming b p ~pred:wbody nxt;
  Builder.add_incoming b ws ~pred:wbody ws';
  Builder.set_block b wexit;
  let i' = Builder.add b i (Ir.Imm 1) in
  Builder.br b ohead;
  Builder.add_incoming b i ~pred:wexit i';
  Builder.add_incoming b sum ~pred:wexit ws;
  Builder.set_block b oexit;
  Builder.ret b (Some sum);
  Builder.finish b

let test_hoists_list_head () =
  let f = list_walk_kernel ~n:16 in
  let a = Analysis.make f in
  let hoisted, _ = Hoist.run a Spf_core.Config.default in
  Helpers.verify_ok f;
  (* Both wbody loads (value and next pointer) are phi-addressed with a
     load-free chain from the outer value: both hoistable. *)
  Alcotest.(check int) "two hoisted prefetches" 2 (List.length hoisted);
  List.iter
    (fun (h : Hoist.hoisted) ->
      let pf = Ir.instr f h.Hoist.prefetch_id in
      Alcotest.(check bool) "prefetch placed in the preheader" true
        (pf.Ir.block = h.Hoist.preheader);
      match pf.Ir.kind with
      | Ir.Prefetch _ -> ()
      | _ -> Alcotest.fail "hoisted instruction is not a prefetch")
    hoisted

let test_hoisted_code_has_no_loads () =
  let f = list_walk_kernel ~n:16 in
  let a = Analysis.make f in
  let hoisted, _ = Hoist.run a Spf_core.Config.default in
  List.iter
    (fun (h : Hoist.hoisted) ->
      List.iter
        (fun id ->
          match (Ir.instr f id).Ir.kind with
          | Ir.Load _ -> Alcotest.fail "hoisted support code contains a load"
          | _ -> ())
        h.Hoist.support_ids)
    hoisted

let test_iv_seeded_phis_not_hoisted () =
  (* A plain counted inner loop (phi seeded by a constant) must NOT fire:
     the main pass's look-ahead serves it. *)
  let f = Helpers.sum_kernel ~n:64 in
  let a = Analysis.make f in
  let hoisted, diags = Hoist.run a Spf_core.Config.default in
  Alcotest.(check int) "nothing to hoist" 0 (List.length hoisted);
  (* And the skip is explained, not silent: the chain crossed no header
     phi, i.e. a plain induction variable the main pass already serves. *)
  Alcotest.(check bool) "skip reason recorded" true
    (List.exists
       (fun (d : Spf_core.Diag.t) ->
         d.Spf_core.Diag.kind = Spf_core.Diag.Hoist_skip Spf_core.Diag.No_outer_phi)
       diags)

let test_hoist_preserves_semantics () =
  (* Build lists in memory and compare the sum with hoisting on/off. *)
  let n = 64 in
  let mem = Memory.create () in
  let rng = Spf_workloads.Rng.create ~seed:4 in
  let node v nxt =
    let a = Memory.alloc mem 16 in
    Memory.store mem Ir.I64 a v;
    Memory.store mem Ir.I64 (a + 8) nxt;
    a
  in
  let expected = ref 0 in
  let heads =
    Array.init n (fun _ ->
        let len = Spf_workloads.Rng.int rng 4 in
        let rec chain k = if k = 0 then 0
          else begin
            let v = Spf_workloads.Rng.int rng 1000 in
            expected := !expected + v;
            node v (chain (k - 1))
          end
        in
        chain len)
  in
  let heads_base = Memory.alloc_i64_array mem heads in
  let f = list_walk_kernel ~n in
  ignore (Pass.run f);
  Helpers.verify_ok f;
  Alcotest.(check int) "sum preserved under hoisting" !expected
    (Helpers.run_ret ~mem ~args:[| heads_base |] f)

let test_hj8_first_node_hoisted () =
  let b = Spf_workloads.Hj.build Test_pass.small_hj8 in
  let f = b.Spf_workloads.Workload.func in
  let a = Analysis.make f in
  let hoisted, _ = Hoist.run a Spf_core.Config.default in
  Alcotest.(check bool) "HJ-8 walk loads hoisted" true (List.length hoisted > 0);
  Helpers.verify_ok f

let test_config_disables_hoist () =
  let f = list_walk_kernel ~n:16 in
  let report =
    Pass.run ~config:{ Spf_core.Config.default with Spf_core.Config.hoist = false } f
  in
  let any_hoisted =
    List.exists
      (fun (_, d) -> match d with Pass.Hoisted _ -> true | _ -> false)
      report.Pass.decisions
  in
  Alcotest.(check bool) "hoist disabled by config" false any_hoisted

let suite =
  [
    Alcotest.test_case "hoists list head" `Quick test_hoists_list_head;
    Alcotest.test_case "hoisted code has no loads" `Quick test_hoisted_code_has_no_loads;
    Alcotest.test_case "IV-seeded phis not hoisted" `Quick test_iv_seeded_phis_not_hoisted;
    Alcotest.test_case "hoist preserves semantics" `Quick test_hoist_preserves_semantics;
    Alcotest.test_case "HJ-8 first node hoisted" `Quick test_hj8_first_node_hoisted;
    Alcotest.test_case "config disables hoist" `Quick test_config_disables_hoist;
  ]
