module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Memory = Spf_sim.Memory
module Interp = Spf_sim.Interp
module Machine = Spf_sim.Machine

(* Functional correctness of the interpreter (values, control flow, memory,
   floats, intrinsics) and basic timing sanity. *)

let ret_of ?mem ?args f = Helpers.run_ret ?mem ?args f

let straight_line ops =
  let b = Builder.create ~name:"t" ~nparams:2 in
  let v = ops b (Builder.param b 0) (Builder.param b 1) in
  Builder.ret b (Some v);
  Builder.finish b

let test_arith () =
  let check name op x y expect =
    let f = straight_line (fun b p0 p1 -> Builder.binop b op p0 p1) in
    Alcotest.(check int) name expect (ret_of ~args:[| x; y |] f)
  in
  check "add" Ir.Add 17 25 42;
  check "sub" Ir.Sub 17 25 (-8);
  check "mul" Ir.Mul 6 7 42;
  check "sdiv" Ir.Sdiv 45 6 7;
  check "srem" Ir.Srem 45 6 3;
  check "and" Ir.And 12 10 8;
  check "or" Ir.Or 12 10 14;
  check "xor" Ir.Xor 12 10 6;
  check "shl" Ir.Shl 3 4 48;
  check "lshr" Ir.Lshr 48 4 3;
  check "ashr" Ir.Ashr (-16) 2 (-4);
  check "smin" Ir.Smin 5 9 5;
  check "smax" Ir.Smax 5 9 9

let test_cmp_select () =
  let f =
    straight_line (fun b p0 p1 ->
        let c = Builder.cmp b Ir.Slt p0 p1 in
        Builder.select b c (Ir.Imm 111) (Ir.Imm 222))
  in
  Alcotest.(check int) "select true" 111 (ret_of ~args:[| 1; 2 |] f);
  Alcotest.(check int) "select false" 222 (ret_of ~args:[| 2; 1 |] f)

let test_gep () =
  let f =
    straight_line (fun b p0 p1 -> Builder.gep b p0 p1 8)
  in
  Alcotest.(check int) "gep address" (1000 + 24) (ret_of ~args:[| 1000; 3 |] f)

let test_memory_roundtrip () =
  let mem = Memory.create () in
  let base = Memory.alloc mem 64 in
  let b = Builder.create ~name:"t" ~nparams:1 in
  let p = Builder.param b 0 in
  Builder.store b Ir.I32 p (Ir.Imm 0xDEAD);
  Builder.store b Ir.I8 (Builder.gep b p (Ir.Imm 8) 1) (Ir.Imm 0x7F);
  let v1 = Builder.load b Ir.I32 p in
  let v2 = Builder.load b Ir.I8 (Builder.gep b p (Ir.Imm 8) 1) in
  Builder.ret b (Some (Builder.add b v1 v2));
  let f = Builder.finish b in
  Alcotest.(check int) "load/store roundtrip" (0xDEAD + 0x7F)
    (ret_of ~mem ~args:[| base |] f)

let test_i32_zero_extends () =
  let mem = Memory.create () in
  let base = Memory.alloc mem 8 in
  Memory.store mem Ir.I32 base (-1);
  let b = Builder.create ~name:"t" ~nparams:1 in
  let v = Builder.load b Ir.I32 (Builder.param b 0) in
  Builder.ret b (Some v);
  Alcotest.(check int) "i32 -1 loads as 0xFFFFFFFF" 0xFFFFFFFF
    (ret_of ~mem ~args:[| base |] (Builder.finish b))

let test_float_ops () =
  let mem = Memory.create () in
  let base = Memory.alloc_f64_array mem [| 1.5; 2.25 |] in
  let b = Builder.create ~name:"t" ~nparams:1 in
  let p = Builder.param b 0 in
  let x = Builder.load b Ir.F64 p in
  let y = Builder.load b Ir.F64 (Builder.gep b p (Ir.Imm 1) 8) in
  let s = Builder.binop b Ir.Fmul x y in
  let s = Builder.binop b Ir.Fadd s (Ir.Fimm 0.625) in
  Builder.store b Ir.F64 p s;
  Builder.ret b None;
  let f = Builder.finish b in
  ignore (Helpers.run ~mem ~args:[| base |] f);
  Alcotest.(check (float 1e-12)) "float compute through memory" 4.0
    (Memory.load_f64 mem base)

let test_loop_sum () =
  let mem = Memory.create () in
  let base = Memory.alloc_i32_array mem (Array.init 100 (fun i -> i)) in
  Alcotest.(check int) "sum 0..99" 4950
    (ret_of ~mem ~args:[| base |] (Helpers.sum_kernel ~n:100))

let test_counted_loop_zero_trips () =
  let mem = Memory.create () in
  let base = Memory.alloc_i32_array mem [| 7 |] in
  Alcotest.(check int) "zero-trip loop returns 0" 0
    (ret_of ~mem ~args:[| base |] (Helpers.sum_kernel ~n:0))

let test_phi_swap () =
  (* Parallel phi semantics: (x, y) <- (y, x) each iteration. *)
  let b = Builder.create ~name:"swap" ~nparams:0 in
  let head = Builder.new_block b "head" in
  let body = Builder.new_block b "body" in
  let exit = Builder.new_block b "exit" in
  let entry = Builder.current_block b in
  Builder.br b head;
  Builder.set_block b head;
  let i = Builder.phi b [ (entry, Ir.Imm 0) ] in
  let x = Builder.phi b [ (entry, Ir.Imm 1) ] in
  let y = Builder.phi b [ (entry, Ir.Imm 2) ] in
  let c = Builder.cmp b Ir.Slt i (Ir.Imm 3) in
  Builder.cbr b c body exit;
  Builder.set_block b body;
  let i' = Builder.add b i (Ir.Imm 1) in
  Builder.br b head;
  Builder.add_incoming b i ~pred:body i';
  Builder.add_incoming b x ~pred:body y;
  Builder.add_incoming b y ~pred:body x;
  Builder.set_block b exit;
  (* After 3 swaps: x = 2, y = 1; return x*10 + y. *)
  let r = Builder.add b (Builder.mul b x (Ir.Imm 10)) y in
  Builder.ret b (Some r);
  Alcotest.(check int) "phis copy in parallel" 21
    (ret_of (Builder.finish b))

let test_intrinsic_call () =
  let b = Builder.create ~name:"t" ~nparams:1 in
  let v = Builder.call b ~pure:true "triple" [ Builder.param b 0 ] in
  Builder.ret b (Some v);
  let f = Builder.finish b in
  let interp =
    Interp.create ~machine:Machine.haswell ~mem:(Memory.create ()) ~args:[| 14 |] f
  in
  Interp.register_intrinsic interp "triple" (fun args -> 3 * args.(0));
  Interp.run interp;
  Alcotest.(check (option int)) "intrinsic result" (Some 42) (Interp.retval interp)

let test_alloc_instr () =
  let b = Builder.create ~name:"t" ~nparams:0 in
  let base = Builder.alloc b (Ir.Imm 128) in
  Builder.store b Ir.I64 base (Ir.Imm 99);
  let v = Builder.load b Ir.I64 base in
  Builder.ret b (Some v);
  Alcotest.(check int) "alloc + store + load" 99 (ret_of (Builder.finish b))

let test_prefetch_is_semantically_inert () =
  let mem = Memory.create () in
  let base = Memory.alloc_i32_array mem (Array.init 10 (fun i -> i)) in
  let b = Builder.create ~name:"t" ~nparams:1 in
  let p = Builder.param b 0 in
  (* Prefetch a wild (but non-negative) address: must not fault and must
     not change any value. *)
  Builder.prefetch b (Ir.Imm 0x7FFFFFFF);
  Builder.prefetch b (Builder.gep b p (Ir.Imm 3) 4);
  let v = Builder.load b Ir.I32 (Builder.gep b p (Ir.Imm 3) 4) in
  Builder.ret b (Some v);
  Alcotest.(check int) "value unchanged by prefetches" 3
    (ret_of ~mem ~args:[| base |] (Builder.finish b))

let test_oob_load_faults () =
  let mem = Memory.create () in
  let b = Builder.create ~name:"t" ~nparams:0 in
  let v = Builder.load b Ir.I64 (Ir.Imm max_int) in
  Builder.ret b (Some v);
  let f = Builder.finish b in
  match Helpers.run ~mem f with
  | _ -> Alcotest.fail "out-of-range load did not trap"
  | exception Interp.Trap { addr; is_store; _ } ->
      Alcotest.(check int) "trap records the faulting address" max_int addr;
      Alcotest.(check bool) "trap is a load" false is_store

let test_oob_store_faults () =
  let mem = Memory.create () in
  let base = Memory.alloc mem 16 in
  let b = Builder.create ~name:"t" ~nparams:1 in
  (* One byte past the break: partially-mapped accesses must fault too. *)
  let addr = Builder.gep b (Builder.param b 0) (Ir.Imm 9) 1 in
  Builder.store b Ir.I64 addr (Ir.Imm 1);
  Builder.ret b None;
  let f = Builder.finish b in
  match Helpers.run ~mem ~args:[| base |] f with
  | _ -> Alcotest.fail "straddling store did not trap"
  | exception Interp.Trap { is_store; width; _ } ->
      Alcotest.(check bool) "trap is a store" true is_store;
      Alcotest.(check int) "trap records width" 8 width

let test_oob_prefetch_dropped_not_faulting () =
  (* Prefetches to wild addresses — negative, huge, just past the break —
     are dropped, counted, and leave execution unperturbed. *)
  let mem = Memory.create () in
  let base = Memory.alloc_i32_array mem [| 5; 6; 7 |] in
  let b = Builder.create ~name:"t" ~nparams:1 in
  let p = Builder.param b 0 in
  Builder.prefetch b (Ir.Imm (-64));
  Builder.prefetch b (Ir.Imm max_int);
  Builder.prefetch b (Builder.gep b p (Ir.Imm (1 lsl 30)) 4);
  Builder.prefetch b (Builder.gep b p (Ir.Imm 1) 4);
  let v = Builder.load b Ir.I32 (Builder.gep b p (Ir.Imm 2) 4) in
  Builder.ret b (Some v);
  let f = Builder.finish b in
  let retval, stats = Helpers.run ~mem ~args:[| base |] f in
  Alcotest.(check (option int)) "execution unperturbed" (Some 7) retval;
  Alcotest.(check int) "three wild prefetches dropped" 3
    stats.Spf_sim.Stats.dropped_prefetches;
  (* Only the mapped prefetch reaches the memory system. *)
  Alcotest.(check int) "the mapped prefetch still issued" 1
    stats.Spf_sim.Stats.sw_prefetches

let test_fuel_exhausted_is_distinct () =
  (* An infinite loop must raise Fuel_exhausted, not a bare Failure. *)
  let b = Builder.create ~name:"spin" ~nparams:0 in
  let head = Builder.new_block b "head" in
  Builder.br b head;
  Builder.set_block b head;
  Builder.br b head;
  let f = Builder.finish b in
  let interp =
    Interp.create ~machine:Machine.haswell ~mem:(Memory.create ()) ~args:[||] f
  in
  match Interp.run ~fuel:100 interp with
  | () -> Alcotest.fail "infinite loop terminated"
  | exception Interp.Fuel_exhausted -> ()

let test_cycles_monotone_with_work () =
  let mem1 = Memory.create () in
  let b1 = Memory.alloc_i32_array mem1 (Array.make 10 1) in
  let _, st_small = Helpers.run ~mem:mem1 ~args:[| b1 |] (Helpers.sum_kernel ~n:10) in
  let mem2 = Memory.create () in
  let b2 = Memory.alloc_i32_array mem2 (Array.make 1000 1) in
  let _, st_big = Helpers.run ~mem:mem2 ~args:[| b2 |] (Helpers.sum_kernel ~n:1000) in
  Alcotest.(check bool) "more work, more cycles" true
    (st_big.Spf_sim.Stats.cycles > st_small.Spf_sim.Stats.cycles);
  Alcotest.(check bool) "instructions counted" true
    (st_big.Spf_sim.Stats.instructions > st_small.Spf_sim.Stats.instructions)

let test_inorder_slower_than_ooo_on_misses () =
  (* The same miss-heavy kernel must cost more cycles on the in-order core
     model than the out-of-order one. *)
  let build () =
    let mem = Memory.create () in
    let n = 4096 in
    let rng = Spf_workloads.Rng.create ~seed:1 in
    let a =
      Memory.alloc_i32_array mem
        (Array.init n (fun _ -> Spf_workloads.Rng.int rng (1 lsl 20)))
    in
    let tgt = Memory.alloc mem (4 * (1 lsl 20)) in
    (mem, [| a; tgt |])
  in
  let cycles machine =
    let mem, args = build () in
    let _, st = Helpers.run ~machine ~mem ~args (Helpers.is_like_kernel ~n:4096) in
    st.Spf_sim.Stats.cycles
  in
  Alcotest.(check bool) "A53 (in-order) slower than Haswell (OoO)" true
    (cycles Machine.a53 > cycles Machine.haswell)

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "cmp/select" `Quick test_cmp_select;
    Alcotest.test_case "gep" `Quick test_gep;
    Alcotest.test_case "memory roundtrip" `Quick test_memory_roundtrip;
    Alcotest.test_case "i32 zero-extension" `Quick test_i32_zero_extends;
    Alcotest.test_case "float ops" `Quick test_float_ops;
    Alcotest.test_case "loop sum" `Quick test_loop_sum;
    Alcotest.test_case "zero-trip loop" `Quick test_counted_loop_zero_trips;
    Alcotest.test_case "phi parallel copy" `Quick test_phi_swap;
    Alcotest.test_case "intrinsic call" `Quick test_intrinsic_call;
    Alcotest.test_case "alloc instruction" `Quick test_alloc_instr;
    Alcotest.test_case "prefetch is inert" `Quick test_prefetch_is_semantically_inert;
    Alcotest.test_case "out-of-bounds load faults" `Quick test_oob_load_faults;
    Alcotest.test_case "out-of-bounds store faults" `Quick test_oob_store_faults;
    Alcotest.test_case "out-of-bounds prefetch dropped" `Quick
      test_oob_prefetch_dropped_not_faulting;
    Alcotest.test_case "fuel exhaustion is distinct" `Quick
      test_fuel_exhausted_is_distinct;
    Alcotest.test_case "cycles monotone" `Quick test_cycles_monotone_with_work;
    Alcotest.test_case "in-order slower on misses" `Quick
      test_inorder_slower_than_ooo_on_misses;
  ]
