module Machine = Spf_sim.Machine
module Memsys = Spf_sim.Memsys
module Dram = Spf_sim.Dram
module Stats = Spf_sim.Stats

(* Behavioural tests for the memory-system composition: latencies per level,
   DRAM queueing, in-flight merging, TLB walks, stride prefetcher. *)

let tscale = 12

let mk ?(machine = Helpers.tiny_machine) () =
  let stats = Stats.create () in
  let dram = Dram.create machine.Machine.dram ~tscale in
  (Memsys.create machine ~tscale ~dram ~stats (), stats, machine)

let access ?(kind = Memsys.Demand) ?(pc = 0) t ~addr ~now =
  Memsys.access t ~kind ~pc ~addr ~now

let test_levels () =
  let t, _, m = mk () in
  (* First touch: DRAM (plus a TLB walk). *)
  let c1 = access t ~addr:0 ~now:0 in
  Alcotest.(check bool) "first access is a DRAM fill" true
    (Memsys.last_level t = Memsys.Dram);
  Alcotest.(check bool) "DRAM latency paid" true
    (c1 >= m.Machine.dram.latency * tscale);
  (* Second touch at a later time: L1 hit. *)
  let now = c1 + 1 in
  let c2 = access t ~addr:0 ~now in
  Alcotest.(check bool) "then an L1 hit" true (Memsys.last_level t = Memsys.L1);
  Alcotest.(check int) "L1 latency" (m.Machine.lat_l1 * tscale) (c2 - now)

let test_inflight_merge () =
  let t, st, _ = mk () in
  let c1 = access t ~addr:0 ~now:0 in
  (* A second access to the same line before the fill returns waits for
     exactly the same completion, without a second DRAM fill. *)
  let c2 = access t ~addr:8 ~now:(c1 / 2) in
  Alcotest.(check int) "merged into in-flight fill" c1 c2;
  Alcotest.(check int) "one DRAM fill" 1 st.Stats.dram_fills;
  Alcotest.(check int) "one in-flight hit" 1 st.Stats.inflight_hits

let test_dram_queueing () =
  let t, _, m = mk () in
  (* Issue more concurrent misses than the channel can overlap; the k-th
     completion is pushed out by at least the channel occupancy. *)
  let completions =
    List.init 8 (fun k -> access t ~addr:(k * 65536) ~now:0 ~pc:k)
  in
  let sorted = List.sort compare completions in
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b - a) :: gaps rest
    | _ -> []
  in
  List.iter
    (fun g ->
      Alcotest.(check bool) "per-line occupancy enforced" true
        (g >= m.Machine.dram.occupancy * tscale))
    (gaps sorted)

let test_demand_vs_prefetch_pools () =
  (* Saturate the prefetch pool with 16 outstanding fills to distinct lines
     of one page; a demand miss to the same page must still start promptly
     (bounded by channel backlog), not wait for a prefetch MSHR to free
     (~ a full DRAM latency). *)
  let t, _, m = mk () in
  let n_pf = m.Machine.pf_mshrs in
  for k = 0 to n_pf - 1 do
    ignore (access ~kind:Memsys.Sw_prefetch t ~addr:(k * 64) ~now:0 ~pc:1)
  done;
  let c = access t ~addr:(63 * 64) ~now:0 ~pc:2 in
  let t2, _, _ = mk () in
  let c_alone = access t2 ~addr:(63 * 64) ~now:0 ~pc:2 in
  let channel_backlog =
    (n_pf * m.Machine.dram.occupancy * tscale)
    + (m.Machine.walk_latency * tscale)
  in
  Alcotest.(check bool) "demand not blocked behind prefetch MSHRs" true
    (c - c_alone <= channel_backlog);
  Alcotest.(check bool) "bound is tighter than a fill latency" true
    (channel_backlog < m.Machine.dram.latency * tscale)

let test_tlb_walks () =
  let t, st, _ = mk () in
  ignore (access t ~addr:0 ~now:0);
  Alcotest.(check int) "first touch walks" 1 st.Stats.page_walks;
  ignore (access t ~addr:64 ~now:1_000_000);
  Alcotest.(check int) "same page: no second walk" 1 st.Stats.page_walks;
  ignore (access t ~addr:(1 lsl 13) ~now:2_000_000);
  Alcotest.(check int) "new page walks" 2 st.Stats.page_walks

let test_walker_serialisation () =
  (* With one walker, two simultaneous walks serialise. *)
  let machine = { Helpers.tiny_machine with Machine.walkers = 1 } in
  let t, _, m = mk ~machine () in
  let c1 = access t ~addr:0 ~now:0 in
  let c2 = access t ~addr:(1 lsl 13) ~now:0 ~pc:1 in
  ignore c1;
  Alcotest.(check bool) "second walk delayed by the first" true
    (c2 >= 2 * m.Machine.walk_latency * tscale)

let test_prefetch_primes_tlb () =
  let t, st, _ = mk () in
  ignore (access ~kind:Memsys.Sw_prefetch t ~addr:0 ~now:0);
  Alcotest.(check int) "prefetch walked" 1 st.Stats.page_walks;
  ignore (access t ~addr:8 ~now:1_000_000);
  Alcotest.(check int) "later demand reuses the entry" 1 st.Stats.page_walks

let test_huge_pages_reduce_walks () =
  let machine = Machine.with_pages Helpers.tiny_machine Machine.Huge_pages in
  let t, st, _ = mk ~machine () in
  (* Touch 64 distinct 4K pages inside one 2M page. *)
  for k = 0 to 63 do
    ignore (access t ~addr:(k * 4096) ~now:(k * 1_000_000) ~pc:k)
  done;
  Alcotest.(check int) "one walk for the whole huge page" 1 st.Stats.page_walks

let test_stride_prefetcher_trains () =
  let t, st, _ = mk ~machine:{ Helpers.tiny_machine with Machine.l1 = { Machine.size = 128; assoc = 2 } } () in
  (* March sequentially at one PC with a 64-byte stride: after the
     threshold, hardware prefetches should be issued. *)
  for k = 0 to 19 do
    ignore (access t ~addr:(k * 64) ~now:(k * 10_000) ~pc:7)
  done;
  Alcotest.(check bool) "hardware prefetches issued" true
    (st.Stats.hw_prefetches > 0)

let test_stride_prefetcher_defeated_by_random () =
  let t, st, _ = mk () in
  let rng = Spf_workloads.Rng.create ~seed:9 in
  for k = 0 to 19 do
    ignore
      (access t
         ~addr:(Spf_workloads.Rng.int rng (1 lsl 20) * 64)
         ~now:(k * 10_000) ~pc:7)
  done;
  Alcotest.(check int) "no hardware prefetches on random pattern" 0
    st.Stats.hw_prefetches

(* --- software-prefetch timeliness classification ---------------------- *)

(* A demand load that catches its software-prefetch fill still in flight
   paid part of the miss: the prefetch was LATE. *)
let test_late_prefetch_fill () =
  let t, st, _ = mk () in
  let c1 = access t ~kind:Memsys.Sw_prefetch ~pc:7 ~addr:0 ~now:0 in
  ignore (access t ~addr:8 ~now:(c1 / 2));
  Alcotest.(check int) "late fill counted" 1 st.Stats.late_pf_fills;
  Alcotest.(check int) "not unused" 0 st.Stats.unused_pf_fills;
  (* The mark is consumed: the next demand touch classifies nothing. *)
  ignore (access t ~addr:0 ~now:(c1 + 1));
  Alcotest.(check int) "counted exactly once" 1 st.Stats.late_pf_fills

(* A demand load that arrives after the fill completed got the full
   benefit: the prefetch was timely — neither late nor unused. *)
let test_timely_prefetch_fill () =
  let t, st, _ = mk () in
  let c1 = access t ~kind:Memsys.Sw_prefetch ~pc:7 ~addr:0 ~now:0 in
  ignore (access t ~addr:0 ~now:(c1 + 1));
  Alcotest.(check int) "not late" 0 st.Stats.late_pf_fills;
  Alcotest.(check int) "not unused" 0 st.Stats.unused_pf_fills;
  Alcotest.(check bool) "served from cache" true (Memsys.last_level t = Memsys.L1)

(* A prefetched line evicted from the last-level cache before any demand
   touch was wasted bandwidth: UNUSED.  The tiny machine has no L3 and a
   16-set 4-way L2, so five demand fills into the prefetched line's set
   push it out. *)
let test_unused_prefetch_fill () =
  let t, st, m = mk () in
  Alcotest.(check bool) "fixture assumes no L3" true (m.Machine.l3 = None);
  let c1 = access t ~kind:Memsys.Sw_prefetch ~pc:7 ~addr:0 ~now:0 in
  let set_stride =
    (* Addresses one whole L2 away land in the same set. *)
    m.Machine.l2.Machine.size
  in
  let now = ref (c1 + 1) in
  for k = 1 to 2 * m.Machine.l2.Machine.assoc do
    (* Distinct pcs so the stride engine never trains on this walk. *)
    now := access t ~pc:(100 + k) ~addr:(k * set_stride) ~now:!now + 1
  done;
  Alcotest.(check int) "unused fill counted" 1 st.Stats.unused_pf_fills;
  Alcotest.(check int) "not late" 0 st.Stats.late_pf_fills;
  (* Touching the line now re-misses without reclassifying anything. *)
  ignore (access t ~addr:0 ~now:!now);
  Alcotest.(check int) "counted exactly once" 1 st.Stats.unused_pf_fills

(* A prefetched line still resident and untouched at end of run is
   deliberately unclassified. *)
let test_resident_prefetch_unclassified () =
  let t, st, _ = mk () in
  ignore (access t ~kind:Memsys.Sw_prefetch ~pc:7 ~addr:0 ~now:0);
  Alcotest.(check int) "no late" 0 st.Stats.late_pf_fills;
  Alcotest.(check int) "no unused" 0 st.Stats.unused_pf_fills

let suite =
  [
    Alcotest.test_case "levels and latencies" `Quick test_levels;
    Alcotest.test_case "late prefetch fill" `Quick test_late_prefetch_fill;
    Alcotest.test_case "timely prefetch fill" `Quick test_timely_prefetch_fill;
    Alcotest.test_case "unused prefetch fill" `Quick test_unused_prefetch_fill;
    Alcotest.test_case "resident prefetch unclassified" `Quick
      test_resident_prefetch_unclassified;
    Alcotest.test_case "in-flight merge" `Quick test_inflight_merge;
    Alcotest.test_case "dram queueing" `Quick test_dram_queueing;
    Alcotest.test_case "demand vs prefetch pools" `Quick test_demand_vs_prefetch_pools;
    Alcotest.test_case "tlb walks" `Quick test_tlb_walks;
    Alcotest.test_case "walker serialisation" `Quick test_walker_serialisation;
    Alcotest.test_case "prefetch primes tlb" `Quick test_prefetch_primes_tlb;
    Alcotest.test_case "huge pages reduce walks" `Quick test_huge_pages_reduce_walks;
    Alcotest.test_case "stride prefetcher trains" `Quick test_stride_prefetcher_trains;
    Alcotest.test_case "stride prefetcher defeated by random" `Quick
      test_stride_prefetcher_defeated_by_random;
  ]
