module Machine = Spf_sim.Machine
module Interp = Spf_sim.Interp
module Multicore = Spf_sim.Multicore
module Workload = Spf_workloads.Workload
module Is = Spf_workloads.Is

(* Multicore co-simulation (Fig 9's substrate): results stay correct under
   interleaving, and sharing one DRAM channel produces contention. *)

let params = { Test_pass.small_is with Is.n_keys = 4096 }

let run_cores ~machine ~n =
  let builts =
    Array.init n (fun k -> Is.build { params with Is.seed = 100 + k })
  in
  let mc =
    Multicore.create ~machine ~n_cores:n
      ~make_instance:(fun ~core_id ~dram ~tscale ->
        let b = builts.(core_id) in
        Interp.create ~machine ~tscale ~dram ~mem:b.Workload.mem
          ~args:b.Workload.args b.Workload.func)
  in
  Multicore.run mc;
  Array.iteri
    (fun k core -> Workload.validate builts.(k) ~retval:(Interp.retval core))
    (Multicore.cores mc);
  Multicore.total_cycles mc

let test_single_core_matches_solo () =
  (* A 1-core multicore run must cost the same as a plain run. *)
  let machine = Machine.haswell in
  let mc = run_cores ~machine ~n:1 in
  let b = Is.build { params with Is.seed = 100 } in
  let interp =
    Interp.create ~machine ~mem:b.Workload.mem ~args:b.Workload.args
      b.Workload.func
  in
  Interp.run interp;
  Alcotest.(check int) "same cycles" (Interp.cycles interp) mc

let test_all_cores_validate () =
  ignore (run_cores ~machine:Machine.haswell ~n:4)

let test_bandwidth_contention () =
  let machine = Machine.haswell in
  let one = run_cores ~machine ~n:1 in
  let four = run_cores ~machine ~n:4 in
  (* Four cores sharing the channel must be slower than one core, but not
     4x slower than four independent runs would suggest if there were no
     sharing at all. *)
  Alcotest.(check bool) "contention slows the makespan" true (four > one);
  Alcotest.(check bool) "but cores do run concurrently" true (four < 4 * one)

let test_throughput_declines_per_core () =
  let machine = Machine.haswell in
  let one = run_cores ~machine ~n:1 in
  let two = run_cores ~machine ~n:2 in
  let four = run_cores ~machine ~n:4 in
  let thr n makespan = float_of_int (n * one) /. float_of_int makespan in
  (* Normalised throughput per Fig 9: more cores -> more total work done,
     but with diminishing per-core efficiency on a memory-bound kernel. *)
  Alcotest.(check bool) "2-core throughput above 1" true (thr 2 two > 1.0);
  Alcotest.(check bool) "efficiency declines" true
    (thr 4 four /. 4.0 < thr 2 two /. 2.0 +. 0.0001)

let test_rerun_finished_is_noop () =
  (* Regression: the old driver counted fuel even when no core was
     runnable, so re-running a finished set of cores with finite fuel
     spun to the limit and raised "out of fuel".  The loop must exit the
     moment nothing is runnable. *)
  let machine = Machine.haswell in
  let b = Is.build { params with Is.seed = 100 } in
  let mc =
    Multicore.create ~machine ~n_cores:1
      ~make_instance:(fun ~core_id:_ ~dram ~tscale ->
        Interp.create ~machine ~tscale ~dram ~mem:b.Workload.mem
          ~args:b.Workload.args b.Workload.func)
  in
  Multicore.run mc;
  (* All cores halted: this must return immediately, not burn fuel. *)
  Multicore.run ~fuel:10 mc;
  Alcotest.(check bool) "still halted" true
    (Array.for_all Interp.halted (Multicore.cores mc))

let suite =
  [
    Alcotest.test_case "1-core matches solo run" `Quick test_single_core_matches_solo;
    Alcotest.test_case "finished re-run is a no-op" `Quick
      test_rerun_finished_is_noop;
    Alcotest.test_case "all cores validate" `Quick test_all_cores_validate;
    Alcotest.test_case "bandwidth contention" `Quick test_bandwidth_contention;
    Alcotest.test_case "throughput declines per core" `Quick
      test_throughput_declines_per_core;
  ]
