module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Pass = Spf_core.Pass
module Safety = Spf_core.Safety
module Config = Spf_core.Config
module Dfs = Spf_core.Dfs
module Schedule = Spf_core.Schedule
module Analysis = Spf_core.Analysis
module Memory = Spf_sim.Memory

(* End-to-end behaviour of the pass: the shapes it should emit for the
   paper's example, the precise rejection reasons for each unsafe pattern,
   scheduling offsets, and semantic preservation on every workload. *)

let decisions_of report =
  List.map
    (fun (_, d) ->
      match d with
      | Pass.Emitted gs -> `Emitted (List.length gs)
      | Pass.Hoisted _ -> `Hoisted
      | Pass.Rejected r -> `Rejected r
      | Pass.Skipped d -> `Skipped (Spf_core.Diag.to_string d))
    report.Pass.decisions

(* --- The paper's running example (Fig 3) ----------------------------- *)

let test_is_example_matches_fig3 () =
  let f = Helpers.is_like_kernel ~n:65536 in
  let report = Pass.run f in
  Helpers.verify_ok f;
  (* Two prefetches: the stride look-ahead at c and the indirect at c/2. *)
  Alcotest.(check int) "two prefetches" 2 report.Pass.n_prefetches;
  let offsets =
    List.concat_map
      (fun (_, d) ->
        match d with
        | Pass.Emitted gs -> List.map (fun g -> g.Spf_core.Codegen.offset_iters) gs
        | _ -> [])
      report.Pass.decisions
  in
  Alcotest.(check (list int)) "offsets are c and c/2" [ 64; 32 ]
    (List.sort (fun a b -> compare b a) offsets);
  (* The generated code contains the clamp (min with n-1), as in Fig 3c. *)
  let has_clamp = ref false in
  Ir.iter_instrs f (fun i ->
      match i.Ir.kind with
      | Ir.Binop (Ir.Smin, _, Ir.Imm 65535) -> has_clamp := true
      | _ -> ());
  Alcotest.(check bool) "clamped against the loop bound" true !has_clamp

let test_pure_stride_left_to_hardware () =
  (* A purely sequential loop gets no prefetches (§4.3). *)
  let f = Helpers.sum_kernel ~n:1024 in
  let report = Pass.run f in
  Alcotest.(check int) "no prefetches" 0 report.Pass.n_prefetches;
  Alcotest.(check bool) "rejected as pure stride" true
    (List.mem (`Rejected Safety.Pure_stride) (decisions_of report))

let test_stride_companion_toggle () =
  let with_companion =
    let f = Helpers.is_like_kernel ~n:1024 in
    (Pass.run f).Pass.n_prefetches
  in
  let without =
    let f = Helpers.is_like_kernel ~n:1024 in
    (Pass.run ~config:{ Config.default with Config.stride_companion = false } f)
      .Pass.n_prefetches
  in
  Alcotest.(check int) "companion adds one prefetch" (without + 1) with_companion

let test_c_parameter_scales_offsets () =
  let f = Helpers.is_like_kernel ~n:4096 in
  let report = Pass.run ~config:(Config.with_c 16 Config.default) f in
  let offsets =
    List.concat_map
      (fun (_, d) ->
        match d with
        | Pass.Emitted gs -> List.map (fun g -> g.Spf_core.Codegen.offset_iters) gs
        | _ -> [])
      report.Pass.decisions
  in
  Alcotest.(check (list int)) "offsets at c=16" [ 16; 8 ]
    (List.sort (fun a b -> compare b a) offsets)

(* --- Rejection reasons ------------------------------------------------ *)

(* b[a[i]] where the loop also stores to a: must be rejected (§4.2). *)
let test_store_alias_rejected () =
  let b = Builder.create ~name:"alias" ~nparams:2 in
  let a = Builder.param b 0 and tgt = Builder.param b 1 in
  let _ =
    Builder.counted_loop b ~init:(Ir.Imm 0) ~bound:(Ir.Imm 1024) ~step:(Ir.Imm 1)
      (fun i ->
        let addr = Builder.gep b a i 4 in
        let k = Builder.load b Ir.I32 addr in
        let v = Builder.load b Ir.I32 (Builder.gep b tgt k 4) in
        ignore v;
        (* Store back into the look-ahead array. *)
        Builder.store b Ir.I32 addr (Builder.add b k (Ir.Imm 1)))
  in
  Builder.ret b None;
  let f = Builder.finish b in
  let report = Pass.run f in
  Alcotest.(check int) "no prefetches" 0 report.Pass.n_prefetches;
  Alcotest.(check bool) "rejected for store aliasing" true
    (List.mem (`Rejected Safety.Store_alias) (decisions_of report))

(* b[f(a[i])] where f is an (impure) call: rejected (line 35). *)
let test_call_rejected () =
  let build ~pure =
    let b = Builder.create ~name:"call" ~nparams:2 in
    let a = Builder.param b 0 and tgt = Builder.param b 1 in
    let _ =
      Builder.counted_loop b ~init:(Ir.Imm 0) ~bound:(Ir.Imm 1024)
        ~step:(Ir.Imm 1) (fun i ->
          let k = Builder.load b Ir.I32 (Builder.gep b a i 4) in
          let h = Builder.call b ~pure "hash" [ k ] in
          let v = Builder.load b Ir.I32 (Builder.gep b tgt h 4) in
          ignore v)
    in
    Builder.ret b None;
    Builder.finish b
  in
  let f = build ~pure:false in
  let report = Pass.run f in
  Alcotest.(check bool) "impure call rejected" true
    (List.mem (`Rejected Safety.Contains_call) (decisions_of report));
  (* Pure calls are also rejected by default... *)
  let f2 = build ~pure:true in
  let r2 = Pass.run f2 in
  Alcotest.(check bool) "pure call rejected by default" true
    (List.mem (`Rejected Safety.Contains_call) (decisions_of r2));
  (* ...but accepted under the §4.1 extension flag. *)
  let f3 = build ~pure:true in
  let r3 =
    Pass.run ~config:{ Config.default with Config.allow_pure_calls = true } f3
  in
  Alcotest.(check bool) "pure call allowed with the extension" true
    (r3.Pass.n_prefetches > 0);
  Helpers.verify_ok f3

(* Conditional intermediate load: b[a[i]] only under a data-dependent
   branch — rejected (§4.2 "conditional on loop-variant values"). *)
let test_conditional_load_rejected () =
  let b = Builder.create ~name:"cond" ~nparams:2 in
  let a = Builder.param b 0 and tgt = Builder.param b 1 in
  let _ =
    Builder.counted_loop b ~init:(Ir.Imm 0) ~bound:(Ir.Imm 1024) ~step:(Ir.Imm 1)
      (fun i ->
        let k = Builder.load b Ir.I32 (Builder.gep b a i 4) in
        let c = Builder.cmp b Ir.Slt k (Ir.Imm 100) in
        let bthen = Builder.new_block b "then" in
        let bjoin = Builder.new_block b "join" in
        Builder.cbr b c bthen bjoin;
        Builder.set_block b bthen;
        let v = Builder.load b Ir.I32 (Builder.gep b tgt k 4) in
        ignore v;
        Builder.br b bjoin;
        Builder.set_block b bjoin)
  in
  Builder.ret b None;
  let f = Builder.finish b in
  let report = Pass.run f in
  Alcotest.(check int) "no prefetches" 0 report.Pass.n_prefetches;
  Alcotest.(check bool) "rejected as conditional" true
    (List.mem (`Rejected Safety.Conditional_code) (decisions_of report))

(* No recognisable bound: while-style loop whose limit is loaded from
   memory each iteration. *)
let test_no_clamp_rejected () =
  let b = Builder.create ~name:"noclamp" ~nparams:3 in
  let a = Builder.param b 0 and tgt = Builder.param b 1 in
  let nptr = Builder.param b 2 in
  let head = Builder.new_block b "head" in
  let body = Builder.new_block b "body" in
  let exit = Builder.new_block b "exit" in
  let entry = Builder.current_block b in
  Builder.br b head;
  Builder.set_block b head;
  let i = Builder.phi b [ (entry, Ir.Imm 0) ] in
  (* Loop bound reloaded from memory: not loop-invariant. *)
  let n = Builder.load b Ir.I64 nptr in
  let c = Builder.cmp b Ir.Slt i n in
  Builder.cbr b c body exit;
  Builder.set_block b body;
  let k = Builder.load b Ir.I32 (Builder.gep b a i 4) in
  let v = Builder.load b Ir.I32 (Builder.gep b tgt k 4) in
  ignore v;
  let i' = Builder.add b i (Ir.Imm 1) in
  Builder.br b head;
  Builder.add_incoming b i ~pred:body i';
  Builder.set_block b exit;
  Builder.ret b None;
  let f = Builder.finish b in
  let report = Pass.run f in
  Alcotest.(check int) "no prefetches" 0 report.Pass.n_prefetches

(* Indirect IV use: a[i*2] (gep index is not the raw induction variable)
   under the prototype restriction. *)
let test_indirect_iv_use_rejected () =
  let b = Builder.create ~name:"indidx" ~nparams:2 in
  let a = Builder.param b 0 and tgt = Builder.param b 1 in
  let _ =
    Builder.counted_loop b ~init:(Ir.Imm 0) ~bound:(Ir.Imm 1024) ~step:(Ir.Imm 1)
      (fun i ->
        let i2 = Builder.mul b i (Ir.Imm 2) in
        let k = Builder.load b Ir.I32 (Builder.gep b a i2 4) in
        let v = Builder.load b Ir.I32 (Builder.gep b tgt k 4) in
        ignore v)
  in
  Builder.ret b None;
  let f = Builder.finish b in
  let report = Pass.run f in
  Alcotest.(check bool) "rejected under direct-index restriction" true
    (List.mem (`Rejected Safety.Indirect_iv_use) (decisions_of report))

(* Alloc-derived clamp: the Fig 3 case where sizes come from allocations
   rather than the loop bound. *)
let test_alloc_clamp () =
  let b = Builder.create ~name:"allocclamp" ~nparams:0 in
  let a = Builder.alloc b (Ir.Imm 4096) in
  let tgt = Builder.alloc b (Ir.Imm 65536) in
  (* Loop bound is a (loop-invariant but unrecognisably bounded) value:
     use Ne so clamp_from_bound still fires... instead make the bound a
     param-free load to force the alloc path. *)
  let nptr = Builder.alloc b (Ir.Imm 8) in
  Builder.store b Ir.I64 nptr (Ir.Imm 1024);
  let n = Builder.load b Ir.I64 nptr in
  let _ =
    Builder.counted_loop b ~init:(Ir.Imm 0) ~bound:n ~step:(Ir.Imm 1) (fun i ->
        let k = Builder.load b Ir.I32 (Builder.gep b a i 4) in
        let v = Builder.load b Ir.I32 (Builder.gep b tgt k 4) in
        ignore v)
  in
  Builder.ret b None;
  let f = Builder.finish b in
  let report = Pass.run f in
  (* The loop bound IS loop-invariant (defined before the loop), so the
     bound path applies; both paths must produce a clamped prefetch. *)
  Alcotest.(check bool) "prefetches emitted" true (report.Pass.n_prefetches > 0);
  Helpers.verify_ok f

(* --- Scheduling ------------------------------------------------------- *)

let test_schedule_formula () =
  Alcotest.(check (list int)) "t=2, c=64" [ 64; 32 ] (Schedule.offsets ~c:64 ~t:2);
  Alcotest.(check (list int)) "t=4, c=16 (HJ-8 example)" [ 16; 12; 8; 4 ]
    (Schedule.offsets ~c:16 ~t:4);
  Alcotest.(check (list int)) "t=1" [ 64 ] (Schedule.offsets ~c:64 ~t:1);
  Alcotest.(check int) "offset never negative" 0
    (List.fold_left min 99 (Schedule.offsets ~c:0 ~t:3))

(* --- Semantics preservation across all workloads ---------------------- *)

let preserves_semantics ~name build =
  let b : Spf_workloads.Workload.built = build () in
  ignore (Pass.run b.Spf_workloads.Workload.func);
  Helpers.verify_ok b.Spf_workloads.Workload.func;
  let interp =
    Spf_sim.Interp.create ~machine:Spf_sim.Machine.a53
      ~mem:b.Spf_workloads.Workload.mem ~args:b.Spf_workloads.Workload.args
      b.Spf_workloads.Workload.func
  in
  Spf_sim.Interp.run interp;
  try Spf_workloads.Workload.validate b ~retval:(Spf_sim.Interp.retval interp)
  with Failure msg -> Alcotest.failf "%s: %s" name msg

let small_is = { Spf_workloads.Is.n_keys = 2048; n_buckets = 1 lsl 14; seed = 1 }
let small_cg = { Spf_workloads.Cg.n_rows = 128; row_nnz = 8; n_cols = 1024; seed = 1 }
let small_ra = { Spf_workloads.Ra.log_table = 12; n_batches = 8; seed = 1 }
let small_hj2 = { Spf_workloads.Hj.log_buckets = 8; elems_per_bucket = 2; n_probes = 512; seed = 1 }
let small_hj8 = { small_hj2 with Spf_workloads.Hj.elems_per_bucket = 8 }
let small_g500 = { Spf_workloads.G500.scale = 8; edge_factor = 8; seed = 1; max_vertices = None }
let bounded_g500 = { small_g500 with Spf_workloads.G500.max_vertices = Some 50 }

let test_pass_preserves_all_workloads () =
  preserves_semantics ~name:"IS" (fun () -> Spf_workloads.Is.build small_is);
  preserves_semantics ~name:"CG" (fun () -> Spf_workloads.Cg.build small_cg);
  preserves_semantics ~name:"RA" (fun () -> Spf_workloads.Ra.build small_ra);
  preserves_semantics ~name:"HJ-2" (fun () -> Spf_workloads.Hj.build small_hj2);
  preserves_semantics ~name:"HJ-8" (fun () -> Spf_workloads.Hj.build small_hj8);
  preserves_semantics ~name:"G500" (fun () -> Spf_workloads.G500.build small_g500);
  preserves_semantics ~name:"G500-bounded" (fun () ->
      Spf_workloads.G500.build bounded_g500)

(* G500: the work-queue chain must be rejected but the inner
   edge->visited chain must be emitted — the paper's §6.1 split. *)
let test_g500_decisions () =
  let b = Spf_workloads.G500.build small_g500 in
  let report = Pass.run b.Spf_workloads.Workload.func in
  let f = b.Spf_workloads.Workload.func in
  let name_of id = (Ir.instr f id).Ir.name in
  let by_name =
    List.map (fun (id, d) -> (name_of id, d)) report.Pass.decisions
  in
  (* parent[col[e]] is prefetched. *)
  (match List.assoc_opt "pv" by_name with
  | Some (Pass.Emitted _) -> ()
  | _ -> Alcotest.fail "edge->visited prefetch not emitted");
  (* work[head] (the queue) must NOT produce an emitted prefetch. *)
  (match List.assoc_opt "v" by_name with
  | Some (Pass.Emitted _) -> Alcotest.fail "work-queue chain wrongly prefetched"
  | _ -> ());
  Helpers.verify_ok f

(* RA: prefetches are generated in the update loop (within-batch lookahead
   only, §6.1). *)
let test_ra_decisions () =
  let b = Spf_workloads.Ra.build small_ra in
  let report = Pass.run b.Spf_workloads.Workload.func in
  Alcotest.(check bool) "RA gets prefetches" true (report.Pass.n_prefetches > 0);
  let f = b.Spf_workloads.Workload.func in
  let emitted_names =
    List.filter_map
      (fun (id, d) ->
        match d with
        | Pass.Emitted _ -> Some (Ir.instr f id).Ir.name
        | _ -> None)
      report.Pass.decisions
  in
  Alcotest.(check bool) "table load prefetched" true
    (List.mem "tv" emitted_names)

(* HJ-8: the bucket (stride-hash-indirect) is caught; the list walk needs
   the walk phi, which must be rejected — and hoisting catches the first
   node (§4.6). *)
let test_hj8_decisions () =
  let b = Spf_workloads.Hj.build small_hj8 in
  let report = Pass.run b.Spf_workloads.Workload.func in
  let f = b.Spf_workloads.Workload.func in
  let classify (id, d) = ((Ir.instr f id).Ir.name, d) in
  let by_name = List.map classify report.Pass.decisions in
  (* "skey" names both the bucket's inline-slot loads (prefetchable via the
     stride-hash-indirect chain) and the walk loop's node loads (rejected:
     their address flows through the walk phi). *)
  Alcotest.(check bool) "bucket probe prefetched" true
    (List.exists
       (fun (n, d) ->
         n = "skey" && match d with Pass.Emitted _ -> true | _ -> false)
       by_name);
  Alcotest.(check bool) "walk loads rejected via non-IV phi" true
    (List.exists
       (fun (n, d) ->
         n = "skey"
         && match d with Pass.Rejected Safety.Non_iv_phi -> true | _ -> false)
       by_name);
  let hoisted = List.exists (fun (_, d) -> match d with Pass.Hoisted _ -> true | _ -> false) by_name in
  Alcotest.(check bool) "first chain node hoisted (§4.6)" true hoisted

(* Idempotence-ish: running the pass twice must not emit duplicate
   prefetches for the same (load, offset). *)
let test_rerun_does_not_duplicate () =
  let f = Helpers.is_like_kernel ~n:4096 in
  let r1 = Pass.run f in
  let r2 = Pass.run f in
  Alcotest.(check int) "first run emits" 2 r1.Pass.n_prefetches;
  (* The second run sees the pass-inserted loads as new candidates but
     dedupes identical (load, offset) pairs; whatever it adds must leave
     the function verifying and semantics intact. *)
  ignore r2;
  Helpers.verify_ok f

let suite =
  [
    Alcotest.test_case "IS example matches Fig 3" `Quick test_is_example_matches_fig3;
    Alcotest.test_case "pure stride left to hardware" `Quick test_pure_stride_left_to_hardware;
    Alcotest.test_case "stride companion toggle" `Quick test_stride_companion_toggle;
    Alcotest.test_case "c parameter scales offsets" `Quick test_c_parameter_scales_offsets;
    Alcotest.test_case "store alias rejected" `Quick test_store_alias_rejected;
    Alcotest.test_case "calls rejected / pure-call extension" `Quick test_call_rejected;
    Alcotest.test_case "conditional load rejected" `Quick test_conditional_load_rejected;
    Alcotest.test_case "unrecognisable bound rejected" `Quick test_no_clamp_rejected;
    Alcotest.test_case "indirect IV use rejected" `Quick test_indirect_iv_use_rejected;
    Alcotest.test_case "alloc/bound clamp" `Quick test_alloc_clamp;
    Alcotest.test_case "schedule formula (eq. 1)" `Quick test_schedule_formula;
    Alcotest.test_case "pass preserves all workloads" `Slow test_pass_preserves_all_workloads;
    Alcotest.test_case "G500 decision split" `Quick test_g500_decisions;
    Alcotest.test_case "RA decisions" `Quick test_ra_decisions;
    Alcotest.test_case "HJ-8 decisions" `Quick test_hj8_decisions;
    Alcotest.test_case "rerun does not duplicate" `Quick test_rerun_does_not_duplicate;
  ]
