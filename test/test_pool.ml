module Pool = Spf_harness.Pool
module Driver = Spf_fuzz.Driver

(* The domain pool (PERFORMANCE.md): submission-ordered collection,
   per-job exception capture, and the determinism guarantee that a
   parallel fuzz campaign is indistinguishable from a serial one. *)

exception Boom of int

let test_map_ordering () =
  (* Results must come back in submission order even when later jobs
     finish first (earlier jobs do more work). *)
  let xs = List.init 64 Fun.id in
  let f i =
    let acc = ref 0 in
    for _ = 1 to (64 - i) * 2000 do
      incr acc
    done;
    ignore !acc;
    i * i
  in
  Alcotest.(check (list int))
    "ordered squares" (List.map f xs)
    (Pool.map ~jobs:4 f xs)

let test_run_captures_exceptions () =
  let thunks =
    [
      (fun () -> 1);
      (fun () -> raise (Boom 1));
      (fun () -> 3);
      (fun () -> raise (Boom 3));
      (fun () -> 5);
    ]
  in
  let rs = Pool.run ~jobs:3 thunks in
  let describe = function
    | Ok v -> Printf.sprintf "ok:%d" v
    | Error (Boom k) -> Printf.sprintf "boom:%d" k
    | Error e -> raise e
  in
  Alcotest.(check (list string))
    "each job's outcome in its own slot"
    [ "ok:1"; "boom:1"; "ok:3"; "boom:3"; "ok:5" ]
    (List.map describe rs)

let test_map_reraises_first_failure () =
  (* map must re-raise the failure of the lowest submission index (what a
     serial loop would have hit first), not whichever finished first. *)
  let f i = if i = 2 || i = 7 then raise (Boom i) else i in
  (match Pool.map ~jobs:4 f (List.init 10 Fun.id) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 2 -> ()
  | exception Boom k -> Alcotest.failf "raised Boom %d, wanted Boom 2" k)

let test_serial_path_inline () =
  (* jobs=1 must not spawn domains: side effects happen in order on the
     calling domain. *)
  let order = ref [] in
  let f i = order := i :: !order; i in
  ignore (Pool.map ~jobs:1 f [ 0; 1; 2; 3 ]);
  Alcotest.(check (list int)) "inline order" [ 3; 2; 1; 0 ] !order

let summaries_equal (a : Driver.summary) (b : Driver.summary) =
  compare a b = 0

let test_fuzz_campaign_deterministic_across_jobs () =
  (* The ISSUE's headline determinism guarantee: a 4-domain campaign
     produces an identical summary (counters and ordered failure list) to
     a serial one on the same seed. *)
  let run jobs = Driver.run ~seed:7 ~jobs ~count:60 () in
  let serial = run 1 and parallel = run 4 in
  Alcotest.(check bool)
    "j=4 summary equals j=1 summary" true
    (summaries_equal serial parallel);
  (* And re-running serially is stable with itself. *)
  Alcotest.(check bool)
    "serial rerun stable" true
    (summaries_equal serial (run 1))

let suite =
  [
    Alcotest.test_case "map preserves submission order" `Quick
      test_map_ordering;
    Alcotest.test_case "run captures per-job exceptions" `Quick
      test_run_captures_exceptions;
    Alcotest.test_case "map re-raises first failure by index" `Quick
      test_map_reraises_first_failure;
    Alcotest.test_case "jobs=1 runs inline in order" `Quick
      test_serial_path_inline;
    Alcotest.test_case "fuzz campaign identical at -j 1 and -j 4" `Slow
      test_fuzz_campaign_deterministic_across_jobs;
  ]
