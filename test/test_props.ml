module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Pass = Spf_core.Pass
module Config = Spf_core.Config
module Schedule = Spf_core.Schedule
module Memory = Spf_sim.Memory
module Rng = Spf_workloads.Rng

(* Property-based tests.  The central one generates random indirect-access
   kernels from a template space, runs the pass, and checks that (a) the
   verifier still accepts the function and (b) execution produces exactly
   the same result as the untransformed kernel on the same data — i.e. the
   pass is semantics-preserving by construction, not just on the
   hand-written benchmarks. *)

(* A kernel descriptor: the generated loop is

     acc = 0
     for i in 0..n:
       k  = A[i]
       e  = <chain of [ops] over k (and i)> land (m-1)
       v  = B[e]
       (if two_level) e2 = (v + salt) land (m-1); v = C[e2]
       acc += v
       (if store_to_d) D[e] = acc
       (if store_to_a) A[i] = acc          -- forces a Store_alias rejection
     return acc *)
type op = Oadd of int | Oxor of int | Oaddi (* + i *) | Oshr of int

type descr = {
  ops : op list;
  two_level : bool;
  store_to_d : bool;
  store_to_a : bool;
  c_const : int;
  stagger : int;
  companion : bool;
}

let log_m = 12
let m = 1 lsl log_m
let n = 512

let build_kernel (d : descr) =
  let b = Builder.create ~name:"prop" ~nparams:4 in
  let pa = Builder.param b 0
  and pb = Builder.param b 1
  and pc = Builder.param b 2
  and pd = Builder.param b 3 in
  let head = Builder.new_block b "head" in
  let body = Builder.new_block b "body" in
  let exit = Builder.new_block b "exit" in
  let entry = Builder.current_block b in
  Builder.br b head;
  Builder.set_block b head;
  let i = Builder.phi ~name:"i" b [ (entry, Ir.Imm 0) ] in
  let acc = Builder.phi ~name:"acc" b [ (entry, Ir.Imm 0) ] in
  let c = Builder.cmp b Ir.Slt i (Ir.Imm n) in
  Builder.cbr b c body exit;
  Builder.set_block b body;
  let k = Builder.load ~name:"k" b Ir.I32 (Builder.gep b pa i 4) in
  let e =
    List.fold_left
      (fun e op ->
        match op with
        | Oadd x -> Builder.add b e (Ir.Imm x)
        | Oxor x -> Builder.binop b Ir.Xor e (Ir.Imm x)
        | Oaddi -> Builder.add b e i
        | Oshr x -> Builder.binop b Ir.Lshr e (Ir.Imm (x land 3)))
      k d.ops
  in
  let e = Builder.binop ~name:"e" b Ir.And e (Ir.Imm (m - 1)) in
  let v = Builder.load ~name:"v" b Ir.I32 (Builder.gep b pb e 4) in
  let v =
    if d.two_level then begin
      let e2 =
        Builder.binop ~name:"e2" b Ir.And
          (Builder.add b v (Ir.Imm 17))
          (Ir.Imm (m - 1))
      in
      Builder.load ~name:"w" b Ir.I32 (Builder.gep b pc e2 4)
    end
    else v
  in
  let acc' = Builder.add ~name:"acc'" b acc v in
  if d.store_to_d then Builder.store b Ir.I32 (Builder.gep b pd e 4) acc';
  if d.store_to_a then Builder.store b Ir.I32 (Builder.gep b pa i 4) acc';
  let i' = Builder.add b i (Ir.Imm 1) in
  Builder.br b head;
  Builder.add_incoming b i ~pred:body i';
  Builder.add_incoming b acc ~pred:body acc';
  Builder.set_block b exit;
  Builder.ret b (Some acc);
  Builder.finish b

let setup_memory ~seed =
  let mem = Memory.create () in
  let rng = Rng.create ~seed in
  let arr len bound =
    Memory.alloc_i32_array mem (Array.init len (fun _ -> Rng.int rng bound))
  in
  let a = arr n m and bb = arr m m and cc = arr m 1000 in
  let dd = Memory.alloc mem (4 * m) in
  (mem, [| a; bb; cc; dd |])

let execute func ~seed =
  let mem, args = setup_memory ~seed in
  let interp =
    Spf_sim.Interp.create ~machine:Spf_sim.Machine.a53 ~mem ~args func
  in
  Spf_sim.Interp.run ~fuel:5_000_000 interp;
  let d_sum = ref 0 in
  for k = 0 to m - 1 do
    d_sum := Spf_workloads.Workload.mix !d_sum (Memory.load mem Ir.I32 (args.(3) + (4 * k)))
  done;
  (Spf_sim.Interp.retval interp, !d_sum)

(* QCheck generators. *)
let op_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun x -> Oadd (x land 1023)) int;
        map (fun x -> Oxor (x land 1023)) int;
        return Oaddi;
        map (fun x -> Oshr x) (int_bound 3);
      ])

let descr_gen =
  QCheck.Gen.(
    let* ops = list_size (int_bound 4) op_gen in
    let* two_level = bool in
    let* store_to_d = bool in
    let* store_to_a = bool in
    let* c_const = oneofl [ 4; 16; 64; 200 ] in
    let* stagger = int_range 1 4 in
    let* companion = bool in
    return { ops; two_level; store_to_d; store_to_a; c_const; stagger; companion })

let descr_arb = QCheck.make descr_gen

let prop_pass_preserves_semantics =
  QCheck.Test.make ~name:"pass preserves random kernels" ~count:60 descr_arb
    (fun d ->
      let seed = 1 + (Hashtbl.hash d land 0xFFFF) in
      let plain = build_kernel d in
      let expected = execute plain ~seed in
      let transformed = build_kernel d in
      let config =
        {
          Config.default with
          Config.c = d.c_const;
          max_stagger = d.stagger;
          stride_companion = d.companion;
        }
      in
      ignore (Pass.run ~config transformed);
      Spf_ir.Verifier.check transformed = []
      && execute transformed ~seed = expected)

let prop_pass_never_invalidates =
  QCheck.Test.make ~name:"pass output always verifies" ~count:60 descr_arb
    (fun d ->
      let f = build_kernel d in
      ignore (Pass.run f);
      Spf_ir.Verifier.check f = [])

let prop_store_alias_always_rejected =
  QCheck.Test.make ~name:"stores to the look-ahead array always reject"
    ~count:40 descr_arb (fun d ->
      let d = { d with store_to_a = true } in
      let f = build_kernel d in
      let report = Pass.run f in
      (* No prefetch may target the chains through A. *)
      List.for_all
        (fun (_, dec) ->
          match dec with
          | Pass.Emitted _ -> false
          | Pass.Hoisted _ | Pass.Rejected _ | Pass.Skipped _ -> true)
        report.Pass.decisions)

let prop_schedule_monotone =
  QCheck.Test.make ~name:"eq. 1 offsets decrease along the chain" ~count:100
    QCheck.(pair (int_range 1 8) (int_range 0 512))
    (fun (t, c) ->
      let offs = Schedule.offsets ~c ~t in
      let rec decreasing = function
        | a :: (b :: _ as rest) -> a >= b && decreasing rest
        | _ -> true
      in
      decreasing offs
      && List.for_all (fun o -> o >= 0 && o <= c) offs
      && List.length offs = t)

let prop_split_preserves_semantics =
  QCheck.Test.make ~name:"split+prefetch preserves random kernels" ~count:40
    descr_arb (fun d ->
      let seed = 1 + (Hashtbl.hash d land 0xFFFF) in
      let plain = build_kernel d in
      let expected = execute plain ~seed in
      let transformed = build_kernel d in
      let config = { Config.default with Config.c = d.c_const } in
      ignore (Spf_core.Split.split_and_prefetch ~config transformed);
      Spf_ir.Verifier.check transformed = []
      && execute transformed ~seed = expected)

let prop_simplify_preserves_semantics =
  QCheck.Test.make ~name:"constant-fold + dce preserve random kernels"
    ~count:40 descr_arb (fun d ->
      let seed = 1 + (Hashtbl.hash d land 0xFFFF) in
      let plain = build_kernel d in
      let expected = execute plain ~seed in
      let transformed = build_kernel d in
      ignore (Spf_core.Pass.run transformed);
      ignore (Spf_ir.Simplify.simplify transformed);
      Spf_ir.Verifier.check transformed = []
      && execute transformed ~seed = expected)

let prop_interp_deterministic =
  QCheck.Test.make ~name:"interpreter is deterministic" ~count:20 descr_arb
    (fun d ->
      let seed = 1 + (Hashtbl.hash d land 0xFFFF) in
      let r1 = execute (build_kernel d) ~seed in
      let r2 = execute (build_kernel d) ~seed in
      r1 = r2)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pass_preserves_semantics;
      prop_pass_never_invalidates;
      prop_store_alias_always_rejected;
      prop_schedule_monotone;
      prop_split_preserves_semantics;
      prop_simplify_preserves_semantics;
      prop_interp_deterministic;
    ]
