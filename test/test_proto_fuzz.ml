(* Protocol-surface fuzz: no byte sequence a client can send — truncated
   frames, oversized tokens, non-UTF-8 bytes, embedded NULs — may make
   the parsing layer raise.  Everything hostile must come back as a
   classified [Error]; a raise on the handler thread would leak the
   connection.  The live-socket counterpart is the garbage-frame phase
   of `spf chaos`. *)

module Proto = Spf_serve.Proto

let arb_bytes = QCheck.string_gen QCheck.Gen.char

let never_raises name f =
  QCheck.Test.make ~name ~count:500 arb_bytes (fun s ->
      match f s with _ -> true)

let prop_parse_verb = never_raises "parse_verb total on bytes" Proto.parse_verb

let prop_parse_verb_submit =
  never_raises "parse_verb total on SUBMIT junk" (fun s ->
      Proto.parse_verb ("SUBMIT " ^ s))

let prop_request_of =
  QCheck.Test.make ~name:"request_of total on junk opts" ~count:300
    QCheck.(pair (small_list (pair arb_bytes arb_bytes)) arb_bytes)
    (fun (opts, case_text) ->
      match Proto.request_of ~id:"f" ~opts ~case_text with
      | Ok _ | Error _ -> true)

(* A line source over a finite list: the reply parser must terminate and
   classify, whatever the lines contain. *)
let source lines =
  let r = ref lines in
  fun () ->
    match !r with
    | [] -> None
    | x :: tl ->
        r := tl;
        Some x

let prop_read_reply =
  QCheck.Test.make ~name:"read_reply total on byte lines" ~count:500
    QCheck.(small_list arb_bytes)
    (fun lines ->
      match Proto.read_reply (source lines) with Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Pinned hostile shapes: the classifications the server and the chaos
   harness rely on. *)

let read lines = Proto.read_reply (source lines)

let test_truncated_frame_is_torn () =
  (* OK header and body, no DONE: the torn-reply classification the
     chaos drain gate keys on. *)
  match read [ "OK x cache=cold"; "R line" ] with
  | Error "connection closed mid-reply" -> ()
  | Error e -> Alcotest.fail ("wrong classification: " ^ e)
  | Ok _ -> Alcotest.fail "truncated frame parsed as a reply"

let test_eof_is_closed () =
  match read [] with
  | Error "connection closed" -> ()
  | Error e -> Alcotest.fail ("wrong classification: " ^ e)
  | Ok _ -> Alcotest.fail "EOF parsed as a reply"

let test_garbage_first_line_is_malformed () =
  List.iter
    (fun line ->
      match read [ line ] with
      | Error e ->
          Alcotest.(check bool)
            ("malformed prefix for " ^ String.escaped line)
            true
            (String.length e >= 9 && String.sub e 0 9 = "malformed")
      | Ok _ -> Alcotest.fail ("garbage accepted: " ^ String.escaped line))
    [ "XYZZY plugh"; "OK"; "OK too many tokens here now"; "\x00\x01\x02"; "DONE x us=1" ]

let test_submit_rejects_option_id () =
  match Proto.parse_verb "SUBMIT k=v" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "option-shaped id accepted"

let test_busy_line_round_trips () =
  (* The shed reply must parse back as a busy ERR carrying its backoff
     hint — clients distinguish "come back later" from real failures. *)
  let line = Proto.busy_line ~id:"-" ~retry_after_ms:250 ~msg:"queue full" in
  match read [ line ] with
  | Ok r -> (
      (match r.Proto.r_err with
      | Some ("busy", _) -> ()
      | _ -> Alcotest.fail "not classified busy");
      match Proto.retry_after_ms r with
      | Some 250 -> ()
      | _ -> Alcotest.fail "retry-after hint lost")
  | Error e -> Alcotest.fail ("busy line unparsable: " ^ e)

let test_retry_after_absent_elsewhere () =
  match read [ "ERR x protocol retry-after is just prose here" ] with
  | Ok r ->
      Alcotest.(check (option int)) "only busy replies carry the hint" None
        (Proto.retry_after_ms r)
  | Error e -> Alcotest.fail e

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_parse_verb; prop_parse_verb_submit; prop_request_of; prop_read_reply ]
  @ [
      Alcotest.test_case "truncated frame classified torn" `Quick
        test_truncated_frame_is_torn;
      Alcotest.test_case "EOF classified closed" `Quick test_eof_is_closed;
      Alcotest.test_case "garbage first line classified malformed" `Quick
        test_garbage_first_line_is_malformed;
      Alcotest.test_case "SUBMIT id cannot be an option" `Quick
        test_submit_rejects_option_id;
      Alcotest.test_case "busy line round-trips with backoff" `Quick
        test_busy_line_round_trips;
      Alcotest.test_case "retry-after only on busy" `Quick
        test_retry_after_absent_elsewhere;
    ]
