module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Pass = Spf_core.Pass
module Memory = Spf_sim.Memory
module Interp = Spf_sim.Interp
module Machine = Spf_sim.Machine
module Gen = Spf_fuzz.Gen
module Oracle = Spf_fuzz.Oracle

(* §4.2 clamp edge cases, all under tight allocation (the index array ends
   exactly at the memory break, so ANY unclamped look-ahead load traps):
   zero-length arrays, a look-ahead offset that overruns the bound by
   exactly one element, and loop-variant trip counts. *)

let check_agrees name spec =
  match Oracle.check spec with
  | Oracle.Agree a ->
      Alcotest.(check bool) (name ^ ": compared, not discarded") false
        a.Oracle.discarded
  | Oracle.Diverged d ->
      Alcotest.failf "%s: %s" name (Oracle.divergence_to_string d)
  | Oracle.Undecided r -> Alcotest.failf "%s: undecided: %s" name r

let tight_spec ~n =
  {
    Gen.shape = Gen.Indirect;
    n;
    inner = 1;
    len_a = 16;
    bound = Gen.Bound_imm;
    tight = true;
    alias_store = false;
    hash_depth = 1;
    data_seed = 1;
  }

let test_zero_length_array () =
  (* Empty loop over a zero-byte index array: the pass still transforms
     the body it never runs; nothing may fault. *)
  check_agrees "n=0 tight" (tight_spec ~n:0);
  check_agrees "n=0 param bound"
    { (tight_spec ~n:0) with Gen.bound = Gen.Bound_param }

let test_single_iteration () =
  (* One iteration: clamp must be 0 = the only valid index. *)
  check_agrees "n=1 tight" (tight_spec ~n:1)

let test_offset_overruns_bound_by_one () =
  (* Trip counts from 1 to 80 straddle the look-ahead constant c = 64 and
     its staggered fractions; each n makes some emitted offset min(i+off,
     n-1) sit exactly on the last element, where a one-element clamp error
     (min(i+off, n)) would cross the break and trap. *)
  for n = 1 to 80 do
    check_agrees (Printf.sprintf "n=%d tight off-by-one" n) (tight_spec ~n)
  done;
  (* And for the Clamp_expr path (runtime bound). *)
  List.iter
    (fun n ->
      check_agrees
        (Printf.sprintf "n=%d tight, param bound" n)
        { (tight_spec ~n) with Gen.bound = Gen.Bound_param })
    [ 1; 2; 63; 64; 65 ]

(* Loop-variant trip count: the inner loop's bound is loaded per outer
   iteration (len = L[i]; for j < len: acc += A[B[i*max+j]]).  The inner
   bound is a Var that is invariant w.r.t. the inner loop, so the pass
   clamps with Clamp_expr(len, -1); rows are packed back-to-back with the
   index array allocated last, so an unclamped or off-by-one look-ahead
   on the final row traps. *)
let variable_trip_kernel ~rows ~max_inner =
  let b = Builder.create ~name:"var_trip" ~nparams:4 in
  let a = Builder.param b 0 in
  let bp = Builder.param b 1 in
  let lens = Builder.param b 2 in
  let acc_loop tag bound body =
    let head = Builder.new_block b (tag ^ ".head") in
    let bodyb = Builder.new_block b (tag ^ ".body") in
    let exit = Builder.new_block b (tag ^ ".exit") in
    let entry = Builder.current_block b in
    Builder.br b head;
    Builder.set_block b head;
    let i = Builder.phi ~name:(tag ^ ".i") b [ (entry, Ir.Imm 0) ] in
    let acc = Builder.phi ~name:(tag ^ ".acc") b [ (entry, Ir.Imm 0) ] in
    let c = Builder.cmp b Ir.Slt i bound in
    Builder.cbr b c bodyb exit;
    Builder.set_block b bodyb;
    let acc' = body i acc in
    let i' = Builder.add b i (Ir.Imm 1) in
    let latch = Builder.current_block b in
    Builder.br b head;
    Builder.add_incoming b i ~pred:latch i';
    Builder.add_incoming b acc ~pred:latch acc';
    Builder.set_block b exit;
    acc
  in
  let total =
    acc_loop "i" (Ir.Imm rows) (fun i acc ->
        let len =
          Builder.load ~name:"len" b Ir.I32 (Builder.gep b lens i 4)
        in
        let row = Builder.gep ~name:"row" b bp (Builder.mul b i (Ir.Imm max_inner)) 4 in
        let inner =
          acc_loop "j" len (fun j jacc ->
              let k = Builder.load ~name:"key" b Ir.I32 (Builder.gep b row j 4) in
              Builder.add b jacc
                (Builder.load ~name:"v" b Ir.I32 (Builder.gep b a k 4)))
        in
        Builder.add b acc inner)
  in
  Builder.ret b (Some total);
  Builder.finish b

let build_variable_trip ~rows ~max_inner ~seed =
  let mem = Memory.create () in
  let rng = Spf_workloads.Rng.create ~seed in
  let len_a = 32 in
  let a_base =
    Memory.alloc_i32_array mem
      (Array.init len_a (fun _ -> Spf_workloads.Rng.int rng 100))
  in
  let lens = Array.init rows (fun _ -> Spf_workloads.Rng.int rng (max_inner + 1)) in
  let lens_base = Memory.alloc_i32_array mem lens in
  (* Index array LAST and exactly rows*max_inner entries: tight. *)
  let b_base =
    Memory.alloc_i32_array mem
      (Array.init (rows * max_inner) (fun _ -> Spf_workloads.Rng.int rng len_a))
  in
  (variable_trip_kernel ~rows ~max_inner, mem, [| a_base; b_base; lens_base; 0 |])

let run_once (func, mem, args) =
  let interp = Interp.create ~machine:Machine.haswell ~mem ~args func in
  Interp.run ~fuel:1_000_000 interp;
  (Interp.retval interp, Memory.digest mem)

let test_loop_variant_trip_counts () =
  List.iter
    (fun seed ->
      let original = run_once (build_variable_trip ~rows:24 ~max_inner:8 ~seed) in
      let func, mem, args = build_variable_trip ~rows:24 ~max_inner:8 ~seed in
      let report = Pass.run func in
      Helpers.verify_ok func;
      Alcotest.(check bool) "inner chain transformed" true
        (report.Pass.n_prefetches > 0);
      let transformed =
        match run_once (func, mem, args) with
        | r -> r
        | exception Interp.Trap f ->
            Alcotest.failf "transformed run trapped: %s (seed %d)"
              (Interp.fault_to_string f) seed
      in
      Alcotest.(check bool) "retval and memory preserved" true
        (original = transformed))
    [ 1; 2; 3; 4; 5 ]

(* --- An executable spec of the safety filters ---------------------------

   For each reject reason in [Safety.reject], one hand-built program the
   filter must reject (the pass emits nothing and records that reason)
   and one minimally-different twin it must accept (the pass emits at
   least one prefetch).  Both sides are then handed to the translation
   validator: a rejected program must prove trivially (zero proof
   obligations — the pass really did nothing), an accepted one must
   prove with at least one discharged look-ahead obligation. *)

module Config = Spf_core.Config
module Safety = Spf_core.Safety
module Validate = Spf_valid.Validate
module Model = Spf_valid.Model

let n_keys = 64
let len_t = 32

(* for i = 0; i < bound; i++ do body i done.  The body callback may open
   extra blocks; whatever block it leaves current becomes the latch. *)
let for_loop b ~bound body =
  let head = Builder.new_block b "head" in
  let bodyb = Builder.new_block b "body" in
  let exit = Builder.new_block b "exit" in
  let entry = Builder.current_block b in
  Builder.br b head;
  Builder.set_block b head;
  let i = Builder.phi ~name:"i" b [ (entry, Ir.Imm 0) ] in
  let c = Builder.cmp b Ir.Slt i bound in
  Builder.cbr b c bodyb exit;
  Builder.set_block b bodyb;
  body i;
  let i' = Builder.add b i (Ir.Imm 1) in
  let latch = Builder.current_block b in
  Builder.br b head;
  Builder.add_incoming b i ~pred:latch i';
  Builder.set_block b exit

let with_func k =
  let b = Builder.create ~name:"spec" ~nparams:2 in
  k b (Builder.param b 0) (Builder.param b 1);
  Builder.ret b None;
  Builder.finish b

let chase_key b a i = Builder.load ~name:"k" b Ir.I32 (Builder.gep b a i 4)
let chase_val b tgt k = Builder.load ~name:"v" b Ir.I32 (Builder.gep b tgt k 4)

(* The baseline accept kernel: for i < 64: v = tgt[a[i]]. *)
let k_indirect () =
  with_func (fun b a tgt ->
      for_loop b ~bound:(Ir.Imm n_keys) (fun i ->
          ignore (chase_val b tgt (chase_key b a i))))

let k_call ~pure () =
  with_func (fun b a tgt ->
      for_loop b ~bound:(Ir.Imm n_keys) (fun i ->
          let k = chase_key b a i in
          let h = Builder.call ~name:"h" b ~pure "mix" [ k ] in
          ignore (chase_val b tgt h)))

(* The index is the {e previous} iteration's key — a loop-carried,
   non-induction phi sits squarely in the address slice. *)
let k_non_iv_phi () =
  with_func (fun b a tgt ->
      let head = Builder.new_block b "head" in
      let bodyb = Builder.new_block b "body" in
      let exit = Builder.new_block b "exit" in
      let entry = Builder.current_block b in
      Builder.br b head;
      Builder.set_block b head;
      let i = Builder.phi ~name:"i" b [ (entry, Ir.Imm 0) ] in
      let prev = Builder.phi ~name:"prev" b [ (entry, Ir.Imm 0) ] in
      let c = Builder.cmp b Ir.Slt i (Ir.Imm n_keys) in
      Builder.cbr b c bodyb exit;
      Builder.set_block b bodyb;
      let k = chase_key b a i in
      ignore (chase_val b tgt prev);
      let i' = Builder.add b i (Ir.Imm 1) in
      let latch = Builder.current_block b in
      Builder.br b head;
      Builder.add_incoming b i ~pred:latch i';
      Builder.add_incoming b prev ~pred:latch k;
      Builder.set_block b exit)

let k_conditional () =
  with_func (fun b a tgt ->
      for_loop b ~bound:(Ir.Imm n_keys) (fun i ->
          let k = chase_key b a i in
          let thenb = Builder.new_block b "then" in
          let joinb = Builder.new_block b "join" in
          let c = Builder.cmp b Ir.Slt k (Ir.Imm (len_t / 2)) in
          Builder.cbr b c thenb joinb;
          Builder.set_block b thenb;
          ignore (chase_val b tgt k);
          Builder.br b joinb;
          Builder.set_block b joinb))

(* Two latches: the increment is shared but the back-edge is taken from
   either of two blocks depending on the loaded value. *)
let k_multi_latch () =
  with_func (fun b a tgt ->
      let head = Builder.new_block b "head" in
      let bodyb = Builder.new_block b "body" in
      let l1 = Builder.new_block b "l1" in
      let l2 = Builder.new_block b "l2" in
      let exit = Builder.new_block b "exit" in
      let entry = Builder.current_block b in
      Builder.br b head;
      Builder.set_block b head;
      let i = Builder.phi ~name:"i" b [ (entry, Ir.Imm 0) ] in
      let c = Builder.cmp b Ir.Slt i (Ir.Imm n_keys) in
      Builder.cbr b c bodyb exit;
      Builder.set_block b bodyb;
      let k = chase_key b a i in
      let v = chase_val b tgt k in
      let i' = Builder.add b i (Ir.Imm 1) in
      let cv = Builder.cmp b Ir.Slt v (Ir.Imm 500) in
      Builder.cbr b cv l1 l2;
      Builder.set_block b l1;
      Builder.br b head;
      Builder.set_block b l2;
      Builder.br b head;
      Builder.add_incoming b i ~pred:l1 i';
      Builder.add_incoming b i ~pred:l2 i';
      Builder.set_block b exit)

(* Descending induction variable: i = 63 down to 0, step -1. *)
let k_descending () =
  with_func (fun b a tgt ->
      let head = Builder.new_block b "head" in
      let bodyb = Builder.new_block b "body" in
      let exit = Builder.new_block b "exit" in
      let entry = Builder.current_block b in
      Builder.br b head;
      Builder.set_block b head;
      let i = Builder.phi ~name:"i" b [ (entry, Ir.Imm (n_keys - 1)) ] in
      let c = Builder.cmp b Ir.Sgt i (Ir.Imm (-1)) in
      Builder.cbr b c bodyb exit;
      Builder.set_block b bodyb;
      ignore (chase_val b tgt (chase_key b a i));
      let i' = Builder.add b i (Ir.Imm (-1)) in
      let latch = Builder.current_block b in
      Builder.br b head;
      Builder.add_incoming b i ~pred:latch i';
      Builder.set_block b exit)

let k_store ~into_index () =
  let b = Builder.create ~name:"spec" ~nparams:3 in
  let a = Builder.param b 0
  and tgt = Builder.param b 1
  and out = Builder.param b 2 in
  for_loop b ~bound:(Ir.Imm n_keys) (fun i ->
      let v = chase_val b tgt (chase_key b a i) in
      let dst = if into_index then a else out in
      Builder.store b Ir.I32 (Builder.gep b dst i 4) v);
  Builder.ret b None;
  Builder.finish b

(* A search loop: a second exit edge (break on sentinel) means no single
   exit condition, so no clamp can be derived. *)
let k_break () =
  with_func (fun b a tgt ->
      let head = Builder.new_block b "head" in
      let bodyb = Builder.new_block b "body" in
      let cont = Builder.new_block b "cont" in
      let exit = Builder.new_block b "exit" in
      let entry = Builder.current_block b in
      Builder.br b head;
      Builder.set_block b head;
      let i = Builder.phi ~name:"i" b [ (entry, Ir.Imm 0) ] in
      let c = Builder.cmp b Ir.Slt i (Ir.Imm n_keys) in
      Builder.cbr b c bodyb exit;
      Builder.set_block b bodyb;
      let v = chase_val b tgt (chase_key b a i) in
      let hit = Builder.cmp b Ir.Eq v (Ir.Imm 999_999) in
      Builder.cbr b hit exit cont;
      Builder.set_block b cont;
      let i' = Builder.add b i (Ir.Imm 1) in
      Builder.br b head;
      Builder.add_incoming b i ~pred:cont i';
      Builder.set_block b exit)

(* The induction variable reaches the index load through a multiply, not
   directly as a gep index: k = a[2*i]. *)
let k_strided_index () =
  with_func (fun b a tgt ->
      for_loop b ~bound:(Ir.Imm n_keys) (fun i ->
          let i2 = Builder.mul ~name:"i2" b i (Ir.Imm 2) in
          ignore (chase_val b tgt (chase_key b a i2))))

let k_pure_stride () =
  with_func (fun b a _tgt ->
      for_loop b ~bound:(Ir.Imm n_keys) (fun i -> ignore (chase_key b a i)))

let k_duplicate () =
  with_func (fun b a tgt ->
      for_loop b ~bound:(Ir.Imm n_keys) (fun i ->
          let k = chase_key b a i in
          let addr = Builder.gep b tgt k 4 in
          ignore (Builder.load ~name:"v1" b Ir.I32 addr);
          ignore (Builder.load ~name:"v2" b Ir.I32 addr)))

let k_two_targets () =
  let b = Builder.create ~name:"spec" ~nparams:3 in
  let a = Builder.param b 0
  and tgt = Builder.param b 1
  and tgt2 = Builder.param b 2 in
  for_loop b ~bound:(Ir.Imm n_keys) (fun i ->
      let k = chase_key b a i in
      ignore (chase_val b tgt k);
      ignore (chase_val b tgt2 k));
  Builder.ret b None;
  Builder.finish b

(* The only load in the loop has a loop-invariant address. *)
let k_invariant_addr () =
  with_func (fun b _a tgt ->
      for_loop b ~bound:(Ir.Imm n_keys) (fun _i ->
          ignore (Builder.load b Ir.I32 (Builder.gep b tgt (Ir.Imm 0) 4))))

(* Environments.  Target values are all zero so kernels that fold loaded
   values into addresses (k_non_iv_phi) stay inside the mapping. *)
let alloc_arrays ~extra () =
  let mem = Memory.create () in
  let rng = Spf_workloads.Rng.create ~seed:7 in
  let a =
    Memory.alloc_i32_array mem
      (Array.init n_keys (fun _ -> Spf_workloads.Rng.int rng len_t))
  in
  let tgt = Memory.alloc_i32_array mem (Array.make len_t 0) in
  match extra with
  | false -> (mem, [| a; tgt |])
  | true ->
      let third = Memory.alloc_i32_array mem (Array.make (2 * n_keys) 0) in
      (mem, [| a; tgt; third |])

let env2 () = alloc_arrays ~extra:false ()
let env3 () = alloc_arrays ~extra:true ()

type expect =
  | Rejects of Safety.reject  (** that reason recorded, nothing emitted *)
  | Emits  (** at least one prefetch *)
  | Emits_and_rejects of Safety.reject
      (** prefetches for one chain, that reason for another (Duplicate) *)

type row = {
  row : string;
  config : Config.t;
  build : unit -> Ir.func;
  env : unit -> Memory.t * int array;
  expect : expect;
}

let rows =
  let std = Config.default in
  [
    { row = "baseline accept"; config = std; build = k_indirect; env = env2;
      expect = Emits };
    { row = "call rejects"; config = std; build = k_call ~pure:false;
      env = env2; expect = Rejects Safety.Contains_call };
    { row = "pure call accepts when allowed";
      config = { std with Config.allow_pure_calls = true };
      build = k_call ~pure:true; env = env2; expect = Emits };
    { row = "non-IV phi rejects"; config = std; build = k_non_iv_phi;
      env = env2; expect = Rejects Safety.Non_iv_phi };
    { row = "conditional load rejects"; config = std; build = k_conditional;
      env = env2; expect = Rejects Safety.Conditional_code };
    (* A two-latch loop has a 3-predecessor header, so no phi is ever
       recognised as an induction variable and the candidate dies before
       the dedicated Multi_latch filter (which is defence in depth).
       The observable contract — multi-latch loops are never
       transformed — is what this row pins. *)
    { row = "two latches reject"; config = std; build = k_multi_latch;
      env = env2; expect = Rejects Safety.No_candidate };
    { row = "descending step rejects"; config = std; build = k_descending;
      env = env2; expect = Rejects Safety.Bad_step };
    { row = "store into index array rejects"; config = std;
      build = k_store ~into_index:true; env = env3;
      expect = Rejects Safety.Store_alias };
    { row = "store into distinct array accepts"; config = std;
      build = k_store ~into_index:false; env = env3; expect = Emits };
    { row = "break exit rejects (no clamp)"; config = std; build = k_break;
      env = env2; expect = Rejects Safety.No_clamp };
    { row = "strided index rejects"; config = std; build = k_strided_index;
      env = env2; expect = Rejects Safety.Indirect_iv_use };
    { row = "pure stride rejects"; config = std; build = k_pure_stride;
      env = env2; expect = Rejects Safety.Pure_stride };
    { row = "duplicate chain rejects the copy"; config = std;
      build = k_duplicate; env = env2;
      expect = Emits_and_rejects Safety.Duplicate };
    { row = "distinct targets both accept"; config = std;
      build = k_two_targets; env = env3; expect = Emits };
    { row = "invariant address rejects"; config = std;
      build = k_invariant_addr; env = env2;
      expect = Rejects Safety.No_candidate };
  ]

let decision_to_string = function
  | Pass.Emitted _ -> "emitted"
  | Pass.Hoisted _ -> "hoisted"
  | Pass.Rejected r -> "rejected:" ^ Safety.string_of_reject r
  | Pass.Skipped _ -> "skipped"

let check_row r =
  let orig = r.build () in
  let xform = r.build () in
  let report = Pass.run ~config:r.config xform in
  Helpers.verify_ok xform;
  let decisions =
    List.map (fun (_, d) -> decision_to_string d) report.Pass.decisions
    |> String.concat ", "
  in
  let require_reason reason =
    let hit =
      List.exists
        (function _, Pass.Rejected rr -> rr = reason | _ -> false)
        report.Pass.decisions
    in
    if not hit then
      Alcotest.failf "%s: expected a %s rejection, decisions: [%s]" r.row
        (Safety.string_of_reject reason)
        decisions
  in
  (match r.expect with
  | Rejects reason ->
      if report.Pass.n_prefetches <> 0 then
        Alcotest.failf "%s: expected no prefetches, got %d [%s]" r.row
          report.Pass.n_prefetches decisions;
      require_reason reason
  | Emits ->
      if report.Pass.n_prefetches = 0 then
        Alcotest.failf "%s: expected a prefetch, decisions: [%s]" r.row
          decisions
  | Emits_and_rejects reason ->
      if report.Pass.n_prefetches = 0 then
        Alcotest.failf "%s: expected a prefetch, decisions: [%s]" r.row
          decisions;
      require_reason reason);
  let env = { Model.fresh = r.env; Model.fuel = 10_000_000 } in
  match Validate.check ~env ~orig ~xform () with
  | Validate.Proved { obligations; _ } -> (
      match r.expect with
      | Rejects _ ->
          Alcotest.(check int) (r.row ^ ": proved with no obligations") 0
            obligations
      | Emits | Emits_and_rejects _ ->
          Alcotest.(check bool)
            (r.row ^ ": proved with a look-ahead obligation")
            true (obligations > 0))
  | Validate.Refuted { detail; _ } ->
      Alcotest.failf "%s: validator refuted the pass: %s" r.row detail
  | Validate.Gave_up why ->
      Alcotest.failf "%s: validator gave up: %s" r.row why

let test_filter_spec () = List.iter check_row rows

let suite =
  [
    Alcotest.test_case "zero-length arrays" `Quick test_zero_length_array;
    Alcotest.test_case "single iteration" `Quick test_single_iteration;
    Alcotest.test_case "offset overruns bound by one" `Quick
      test_offset_overruns_bound_by_one;
    Alcotest.test_case "loop-variant trip counts" `Quick
      test_loop_variant_trip_counts;
    Alcotest.test_case "safety filter executable spec" `Quick
      test_filter_spec;
  ]
