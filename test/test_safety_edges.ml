module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Pass = Spf_core.Pass
module Memory = Spf_sim.Memory
module Interp = Spf_sim.Interp
module Machine = Spf_sim.Machine
module Gen = Spf_fuzz.Gen
module Oracle = Spf_fuzz.Oracle

(* §4.2 clamp edge cases, all under tight allocation (the index array ends
   exactly at the memory break, so ANY unclamped look-ahead load traps):
   zero-length arrays, a look-ahead offset that overruns the bound by
   exactly one element, and loop-variant trip counts. *)

let check_agrees name spec =
  match Oracle.check spec with
  | Oracle.Agree a ->
      Alcotest.(check bool) (name ^ ": compared, not discarded") false
        a.Oracle.discarded
  | Oracle.Diverged d ->
      Alcotest.failf "%s: %s" name (Oracle.divergence_to_string d)

let tight_spec ~n =
  {
    Gen.shape = Gen.Indirect;
    n;
    inner = 1;
    len_a = 16;
    bound = Gen.Bound_imm;
    tight = true;
    alias_store = false;
    hash_depth = 1;
    data_seed = 1;
  }

let test_zero_length_array () =
  (* Empty loop over a zero-byte index array: the pass still transforms
     the body it never runs; nothing may fault. *)
  check_agrees "n=0 tight" (tight_spec ~n:0);
  check_agrees "n=0 param bound"
    { (tight_spec ~n:0) with Gen.bound = Gen.Bound_param }

let test_single_iteration () =
  (* One iteration: clamp must be 0 = the only valid index. *)
  check_agrees "n=1 tight" (tight_spec ~n:1)

let test_offset_overruns_bound_by_one () =
  (* Trip counts from 1 to 80 straddle the look-ahead constant c = 64 and
     its staggered fractions; each n makes some emitted offset min(i+off,
     n-1) sit exactly on the last element, where a one-element clamp error
     (min(i+off, n)) would cross the break and trap. *)
  for n = 1 to 80 do
    check_agrees (Printf.sprintf "n=%d tight off-by-one" n) (tight_spec ~n)
  done;
  (* And for the Clamp_expr path (runtime bound). *)
  List.iter
    (fun n ->
      check_agrees
        (Printf.sprintf "n=%d tight, param bound" n)
        { (tight_spec ~n) with Gen.bound = Gen.Bound_param })
    [ 1; 2; 63; 64; 65 ]

(* Loop-variant trip count: the inner loop's bound is loaded per outer
   iteration (len = L[i]; for j < len: acc += A[B[i*max+j]]).  The inner
   bound is a Var that is invariant w.r.t. the inner loop, so the pass
   clamps with Clamp_expr(len, -1); rows are packed back-to-back with the
   index array allocated last, so an unclamped or off-by-one look-ahead
   on the final row traps. *)
let variable_trip_kernel ~rows ~max_inner =
  let b = Builder.create ~name:"var_trip" ~nparams:4 in
  let a = Builder.param b 0 in
  let bp = Builder.param b 1 in
  let lens = Builder.param b 2 in
  let acc_loop tag bound body =
    let head = Builder.new_block b (tag ^ ".head") in
    let bodyb = Builder.new_block b (tag ^ ".body") in
    let exit = Builder.new_block b (tag ^ ".exit") in
    let entry = Builder.current_block b in
    Builder.br b head;
    Builder.set_block b head;
    let i = Builder.phi ~name:(tag ^ ".i") b [ (entry, Ir.Imm 0) ] in
    let acc = Builder.phi ~name:(tag ^ ".acc") b [ (entry, Ir.Imm 0) ] in
    let c = Builder.cmp b Ir.Slt i bound in
    Builder.cbr b c bodyb exit;
    Builder.set_block b bodyb;
    let acc' = body i acc in
    let i' = Builder.add b i (Ir.Imm 1) in
    let latch = Builder.current_block b in
    Builder.br b head;
    Builder.add_incoming b i ~pred:latch i';
    Builder.add_incoming b acc ~pred:latch acc';
    Builder.set_block b exit;
    acc
  in
  let total =
    acc_loop "i" (Ir.Imm rows) (fun i acc ->
        let len =
          Builder.load ~name:"len" b Ir.I32 (Builder.gep b lens i 4)
        in
        let row = Builder.gep ~name:"row" b bp (Builder.mul b i (Ir.Imm max_inner)) 4 in
        let inner =
          acc_loop "j" len (fun j jacc ->
              let k = Builder.load ~name:"key" b Ir.I32 (Builder.gep b row j 4) in
              Builder.add b jacc
                (Builder.load ~name:"v" b Ir.I32 (Builder.gep b a k 4)))
        in
        Builder.add b acc inner)
  in
  Builder.ret b (Some total);
  Builder.finish b

let build_variable_trip ~rows ~max_inner ~seed =
  let mem = Memory.create () in
  let rng = Spf_workloads.Rng.create ~seed in
  let len_a = 32 in
  let a_base =
    Memory.alloc_i32_array mem
      (Array.init len_a (fun _ -> Spf_workloads.Rng.int rng 100))
  in
  let lens = Array.init rows (fun _ -> Spf_workloads.Rng.int rng (max_inner + 1)) in
  let lens_base = Memory.alloc_i32_array mem lens in
  (* Index array LAST and exactly rows*max_inner entries: tight. *)
  let b_base =
    Memory.alloc_i32_array mem
      (Array.init (rows * max_inner) (fun _ -> Spf_workloads.Rng.int rng len_a))
  in
  (variable_trip_kernel ~rows ~max_inner, mem, [| a_base; b_base; lens_base; 0 |])

let run_once (func, mem, args) =
  let interp = Interp.create ~machine:Machine.haswell ~mem ~args func in
  Interp.run ~fuel:1_000_000 interp;
  (Interp.retval interp, Memory.digest mem)

let test_loop_variant_trip_counts () =
  List.iter
    (fun seed ->
      let original = run_once (build_variable_trip ~rows:24 ~max_inner:8 ~seed) in
      let func, mem, args = build_variable_trip ~rows:24 ~max_inner:8 ~seed in
      let report = Pass.run func in
      Helpers.verify_ok func;
      Alcotest.(check bool) "inner chain transformed" true
        (report.Pass.n_prefetches > 0);
      let transformed =
        match run_once (func, mem, args) with
        | r -> r
        | exception Interp.Trap f ->
            Alcotest.failf "transformed run trapped: %s (seed %d)"
              (Interp.fault_to_string f) seed
      in
      Alcotest.(check bool) "retval and memory preserved" true
        (original = transformed))
    [ 1; 2; 3; 4; 5 ]

let suite =
  [
    Alcotest.test_case "zero-length arrays" `Quick test_zero_length_array;
    Alcotest.test_case "single iteration" `Quick test_single_iteration;
    Alcotest.test_case "offset overruns bound by one" `Quick
      test_offset_overruns_bound_by_one;
    Alcotest.test_case "loop-variant trip counts" `Quick
      test_loop_variant_trip_counts;
  ]
