module Schedule = Spf_core.Schedule

(* Eq. 1 of the paper (§4.4): offset(l) = c * (t - l) / t for the l-th
   load of a t-load dependent chain, and its total wrapper [distance]
   used by the distance providers. *)

let check = Alcotest.(check int)
let check_list = Alcotest.(check (list int))

(* Paper values: c = 64.  A 2-load chain staggers 64, 32; a 3-load chain
   64, 42, 21 (integer division, as in the paper's generated code). *)
let test_eq1_paper_values () =
  check "t=2 l=0" 64 (Schedule.offset ~c:64 ~t:2 ~l:0);
  check "t=2 l=1" 32 (Schedule.offset ~c:64 ~t:2 ~l:1);
  check_list "t=2 offsets" [ 64; 32 ] (Schedule.offsets ~c:64 ~t:2);
  check_list "t=3 offsets" [ 64; 42; 21 ] (Schedule.offsets ~c:64 ~t:3);
  check_list "t=1 offsets" [ 64 ] (Schedule.offsets ~c:64 ~t:1)

(* [distance] is bit-identical to [offset] wherever offset is well
   formed (c * (t - l) >= t, so eq. 1 stays positive) — the pass's
   static path must not move by a single iteration under the wrapper. *)
let test_distance_matches_offset () =
  List.iter
    (fun c ->
      List.iter
        (fun t ->
          for l = 0 to t - 1 do
            if c * (t - l) >= t then
              check
                (Printf.sprintf "c=%d t=%d l=%d" c t l)
                (Schedule.offset ~c ~t ~l)
                (Schedule.distance ~c ~t ~l)
          done)
        [ 1; 2; 3; 4; 7 ])
    [ 1; 4; 16; 64; 256 ]

(* Degenerate constants clamp instead of scheduling a zero or negative
   look-ahead: c <= 0 behaves as c = 1, and the deepest chain positions
   floor at one iteration rather than zero. *)
let test_distance_clamps_degenerate () =
  check "c=0 floors to 1 iteration" 1 (Schedule.distance ~c:0 ~t:2 ~l:1);
  check "negative c floors to 1" 1 (Schedule.distance ~c:(-64) ~t:2 ~l:0);
  check "deep l floors at 1" 1 (Schedule.distance ~c:2 ~t:3 ~l:2);
  (* eq. 1's raw form yields 0 here (2 * (3-2) / 3); the provider path
     must still prefetch one iteration ahead. *)
  check "raw offset is 0 at the same point" 0 (Schedule.offset ~c:2 ~t:3 ~l:2)

(* Huge constants clamp to max_c so the byte-offset multiply downstream
   cannot overflow, and the clamp itself stays monotonic. *)
let test_distance_clamps_huge () =
  check "max_c passes through" Schedule.max_c
    (Schedule.distance ~c:Schedule.max_c ~t:1 ~l:0);
  check "above max_c clamps" Schedule.max_c
    (Schedule.distance ~c:max_int ~t:1 ~l:0);
  check "clamped value still staggers" (Schedule.max_c / 2)
    (Schedule.distance ~c:max_int ~t:2 ~l:1)

let test_distance_rejects_empty_chain () =
  Alcotest.check_raises "t=0 is a caller bug"
    (Invalid_argument "Schedule.distance: empty chain") (fun () ->
      ignore (Schedule.distance ~c:64 ~t:0 ~l:0))

let suite =
  [
    Alcotest.test_case "eq1 paper values" `Quick test_eq1_paper_values;
    Alcotest.test_case "distance = offset when well-formed" `Quick
      test_distance_matches_offset;
    Alcotest.test_case "degenerate c clamps" `Quick
      test_distance_clamps_degenerate;
    Alcotest.test_case "huge c clamps" `Quick test_distance_clamps_huge;
    Alcotest.test_case "empty chain rejected" `Quick
      test_distance_rejects_empty_chain;
  ]
