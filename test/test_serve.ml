(* The serve subsystem: result-cache accounting (hits, misses,
   evictions, LRU order), the byte-identity contract (a cache hit must
   reproduce the cold reply body exactly, on every engine), cache-key
   separation (same program under a different machine / engine /
   provider / tscale must never collide), poisoned-request
   classification, and the BENCH.json overhead-marker semantics.

   The socket server itself is exercised end-to-end by the
   @serve-smoke rule (test/serve_smoke.ml). *)

module Rcache = Spf_serve.Rcache
module Proto = Spf_serve.Proto
module Service = Spf_serve.Service
module Runner = Spf_harness.Runner
module Supervisor = Spf_harness.Supervisor
module Bench_json = Spf_harness.Bench_json
module Engine = Spf_sim.Engine

(* ------------------------------------------------------------------ *)
(* Rcache: LRU accounting. *)

let stats_line (s : Rcache.level_stats) =
  Printf.sprintf "h=%d m=%d e=%d n=%d/%d" s.hits s.misses s.evictions
    s.entries s.capacity

let test_sim_lru_accounting () =
  let c = Rcache.create ~pass_cap:8 ~sim_cap:2 () in
  Rcache.add_sim c "a" "A";
  Rcache.add_sim c "b" "B";
  Alcotest.(check (option string)) "a hits" (Some "A") (Rcache.find_sim c "a");
  (* a is now most-recent; adding c must evict b, the LRU entry. *)
  Rcache.add_sim c "c" "C";
  Alcotest.(check (option string)) "b evicted" None (Rcache.find_sim c "b");
  Alcotest.(check (option string)) "a survives" (Some "A")
    (Rcache.find_sim c "a");
  Alcotest.(check (option string)) "c present" (Some "C")
    (Rcache.find_sim c "c");
  let s = Rcache.sim_stats c in
  Alcotest.(check string) "counters" "h=3 m=1 e=1 n=2/2" (stats_line s)

let test_sim_reinsert_dedups () =
  let c = Rcache.create ~sim_cap:2 () in
  Rcache.add_sim c "a" "A";
  Rcache.add_sim c "b" "B";
  (* Re-adding an existing key must refresh, not duplicate: a becomes
     most-recent, so the next insertion evicts b. *)
  Rcache.add_sim c "a" "A";
  Rcache.add_sim c "d" "D";
  Alcotest.(check (option string)) "b was LRU" None (Rcache.find_sim c "b");
  Alcotest.(check (option string)) "a survived re-insert" (Some "A")
    (Rcache.find_sim c "a");
  Alcotest.(check int) "entries stay bounded" 2 (Rcache.sim_stats c).entries

(* ------------------------------------------------------------------ *)
(* Service: byte-identity and key separation, on a real fuzz-generated
   program (same generator the loadtest replays). *)

let case_text =
  lazy
    (let rng = Spf_workloads.Rng.split ~seed:11 0 in
     let spec = Spf_fuzz.Gen.random rng in
     let built = Spf_fuzz.Gen.build spec in
     Spf_valid.Case.to_string
       (Spf_valid.Case.of_concrete ~func:built.Spf_fuzz.Gen.func
          ~mem:built.Spf_fuzz.Gen.mem ~args:built.Spf_fuzz.Gen.args
          ~fuel:(Spf_fuzz.Gen.fuel spec)))

let prepare_opts opts =
  match
    Proto.request_of ~id:"t" ~opts ~case_text:(Lazy.force case_text)
  with
  | Ok req -> Service.prepare req
  | Error e -> Alcotest.fail e

let body_string (r : Service.reply) = String.concat "\n" r.Service.body

let test_hit_matches_cold () =
  (* For every engine: the cold body, the inline sim-hit body and a full
     re-run body must be byte-identical — the cache's whole contract. *)
  List.iter
    (fun engine ->
      let name = Engine.to_string engine in
      let cache = Rcache.create () in
      let p = prepare_opts [ ("engine", name) ] in
      let cold = Service.run ~cache ~ctx:Runner.null_ctx p in
      Alcotest.(check string) (name ^ " first run is cold") "cold"
        (Service.status_to_string cold.Service.status);
      (match Service.try_hit ~cache p with
      | None -> Alcotest.fail (name ^ ": no inline hit after cold run")
      | Some hit ->
          Alcotest.(check string) (name ^ " inline hit status") "sim-hit"
            (Service.status_to_string hit.Service.status);
          Alcotest.(check string)
            (name ^ " inline hit body = cold body")
            (body_string cold) (body_string hit));
      let rerun = Service.run ~cache ~ctx:Runner.null_ctx p in
      Alcotest.(check string) (name ^ " rerun is a sim hit") "sim-hit"
        (Service.status_to_string rerun.Service.status);
      Alcotest.(check string)
        (name ^ " rerun body = cold body")
        (body_string cold) (body_string rerun))
    Engine.all

let test_pass_hit_on_machine_change () =
  (* Same program and pass config on a different machine: the compile
     memo applies (the pass is machine-independent under the static
     provider), the sim memo must not. *)
  let cache = Rcache.create () in
  let hsw = prepare_opts [] in
  ignore (Service.run ~cache ~ctx:Runner.null_ctx hsw);
  let a53 = prepare_opts [ ("machine", "a53") ] in
  Alcotest.(check (option string)) "no inline hit across machines" None
    (Option.map body_string (Service.try_hit ~cache a53));
  let r = Service.run ~cache ~ctx:Runner.null_ctx a53 in
  Alcotest.(check string) "a53 run reuses the pass memo" "pass-hit"
    (Service.status_to_string r.Service.status)

let test_key_separation () =
  (* Pairwise-distinct sim keys for every config dimension, and no
     false inline hit after a cold run of the base request. *)
  let base = prepare_opts [] in
  let variants =
    [
      ("machine", prepare_opts [ ("machine", "a53") ]);
      ("engine", prepare_opts [ ("engine", "interp") ]);
      ("provider", prepare_opts [ ("provider", "adaptive") ]);
      ("c", prepare_opts [ ("c", "4") ]);
      ("tscale", prepare_opts [ ("tscale", "2") ]);
    ]
  in
  List.iter
    (fun (dim, v) ->
      Alcotest.(check bool)
        (dim ^ " changes the sim key")
        false
        (String.equal base.Service.sim_key v.Service.sim_key))
    variants;
  (* provider and c are pass-level dimensions; machine/engine/tscale are
     sim-level only and must share the compile memo. *)
  List.iter
    (fun (dim, v) ->
      let same = String.equal base.Service.pass_key v.Service.pass_key in
      match dim with
      | "provider" | "c" ->
          Alcotest.(check bool) (dim ^ " changes the pass key") false same
      | _ -> Alcotest.(check bool) (dim ^ " keeps the pass key") true same)
    variants;
  let cache = Rcache.create () in
  ignore (Service.run ~cache ~ctx:Runner.null_ctx base);
  List.iter
    (fun (dim, v) ->
      match Service.try_hit ~cache v with
      | None -> ()
      | Some _ -> Alcotest.fail (dim ^ " variant collided with base"))
    variants

let poison_case =
  ";; spf-case v1\n!brk 4096\n!fuel 1000\n\
   func poison (0 params, entry bb0) {\n\
   bb0 (entry):\n\
  \  %v.0 = load i32, #1048576\n\
  \  ret %v.0\n\
   }\n"

let test_poison_classified () =
  (* A demand fault must surface as a raise the supervisor classifies
     Deterministic — the serve dispatcher turns exactly this into the
     one client's ERR reply. *)
  let req =
    match Proto.request_of ~id:"p" ~opts:[] ~case_text:poison_case with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let p = Service.prepare req in
  let cache = Rcache.create () in
  match Service.run ~cache ~ctx:Runner.null_ctx p with
  | _ -> Alcotest.fail "poisoned request did not trap"
  | exception e ->
      Alcotest.(check string) "classified deterministic" "deterministic"
        (Supervisor.classification_to_string (Supervisor.classify e));
      Alcotest.(check bool) "error message is non-empty" true
        (String.length (Service.describe_error e) > 0)

(* ------------------------------------------------------------------ *)
(* Bench_json: the supervised-overhead field is a number or a
   self-describing skip marker — never null. *)

let meas name walls =
  { Bench_json.name; skipped = false; walls_s = walls; cycles = 1 }

let test_overhead_measured () =
  let ms = [ meas "fig2" [ 1.0; 1.1 ]; meas "fig2-supervised" [ 1.05; 1.2 ] ] in
  Alcotest.(check string) "pct from min walls" "5.00"
    (Bench_json.overhead_field ~trials:2 ms);
  (* Noise can put the supervised min under the raw min; that is "no
     measurable overhead", clamped at zero, not a negative cost. *)
  let ms = [ meas "fig2" [ 1.0 ]; meas "fig2-supervised" [ 0.9; 1.2 ] ] in
  Alcotest.(check string) "clamped at zero" "0.00"
    (Bench_json.overhead_field ~trials:2 ms)

let test_overhead_skip_markers () =
  let pair = [ meas "fig2" [ 1.0 ]; meas "fig2-supervised" [ 1.05 ] ] in
  Alcotest.(check string) "trials<2 is marked, not null"
    "\"skipped (trials<2)\""
    (Bench_json.overhead_field ~trials:1 pair);
  Alcotest.(check string) "missing pair is marked, not null"
    "\"skipped (fig2 pair not measured)\""
    (Bench_json.overhead_field ~trials:3 [ meas "fig4" [ 1.0 ] ])

let test_render_never_null_overhead () =
  let json =
    Bench_json.render ~jobs:1 ~engine:Engine.default ~trials:1 ~total_s:1.0
      [ meas "fig2" [ 1.0 ]; meas "fig2-supervised" [ 1.0 ] ]
  in
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "schema 7" true (contains ~sub:"\"schema\": 7" json);
  Alcotest.(check bool) "skip marker rendered" true
    (contains ~sub:"\"supervised_overhead_pct\": \"skipped (trials<2)\"" json);
  Alcotest.(check bool) "no null overhead" false
    (contains ~sub:"\"supervised_overhead_pct\": null" json)

(* ------------------------------------------------------------------ *)
(* The daemon under hostile conditions, in process: admission control
   always answers busy (never a silent drop), the read loop is bounded
   in bytes and in time, and a journal-backed restart serves the same
   bytes warm.  The spawned-process versions of these checks live in
   @serve-smoke and @chaos-smoke. *)

module Server = Spf_serve.Server
module Client = Spf_serve.Client

let scratch =
  let n = ref 0 in
  fun name ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "spf-ts-%d-%d-%s" (Unix.getpid ()) !n name)

let rm_rf d =
  if Sys.file_exists d then begin
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    Sys.rmdir d
  end

let with_server cfg f =
  let t = Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Server.wait t)
    (fun () -> f t)

let test_cfg sock = { (Server.default_cfg (Server.Unix_sock sock)) with Server.jobs = 1 }

let with_client sock f =
  let c = Client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

(* Read one raw reply line off a fresh connection without sending
   anything — how a shed or idling client experiences the server. *)
let read_raw_reply sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let ic = Unix.in_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let line = ref (try Some (input_line ic) with End_of_file -> None) in
      let next () =
        let l = !line in
        line := None;
        l
      in
      match Proto.read_reply next with
      | Ok r -> r
      | Error e -> Alcotest.fail ("raw reply unparsable: " ^ e))

let test_queue_shed_answers_busy () =
  let sock = scratch "shed.sock" in
  let cfg = { (test_cfg sock) with Server.max_queue = 0 } in
  with_server cfg (fun _ ->
      with_client sock (fun c ->
          match Client.submit c ~id:"q" ~case_text:(Lazy.force case_text) () with
          | Error e -> Alcotest.fail e
          | Ok r ->
              (match r.Proto.r_err with
              | Some ("busy", _) -> ()
              | _ -> Alcotest.fail "full queue did not answer busy");
              Alcotest.(check (option int)) "backoff hint carried" (Some 250)
                (Proto.retry_after_ms r)))

let test_conn_shed_answers_busy () =
  let sock = scratch "conns.sock" in
  let cfg = { (test_cfg sock) with Server.max_conns = 1 } in
  with_server cfg (fun _ ->
      with_client sock (fun c1 ->
          Alcotest.(check bool) "admitted connection serves" true
            (Client.ping c1);
          let r = read_raw_reply sock in
          (match r.Proto.r_err with
          | Some ("busy", _) -> ()
          | _ -> Alcotest.fail "excess connection not answered busy");
          Alcotest.(check (option int)) "shed carries a backoff" (Some 500)
            (Proto.retry_after_ms r);
          (* The admitted connection is unaffected by the shed. *)
          Alcotest.(check bool) "first connection still serves" true
            (Client.ping c1)))

let test_oversized_request_classified () =
  let sock = scratch "big.sock" in
  let cfg = { (test_cfg sock) with Server.max_request_bytes = 64 } in
  with_server cfg (fun _ ->
      with_client sock (fun c ->
          match Client.submit c ~id:"b" ~case_text:(Lazy.force case_text) () with
          | Error e -> Alcotest.fail e
          | Ok r -> (
              match r.Proto.r_err with
              | Some ("protocol", _) -> ()
              | _ -> Alcotest.fail "oversized request not classified")))

let test_idle_timeout_classified () =
  let sock = scratch "idle.sock" in
  let cfg = { (test_cfg sock) with Server.idle_timeout_s = 0.2 } in
  with_server cfg (fun _ ->
      (* Connect and send nothing: the bounded read must answer a
         classified timeout instead of holding the handler forever. *)
      let r = read_raw_reply sock in
      match r.Proto.r_err with
      | Some ("timeout", _) -> ()
      | _ -> Alcotest.fail "idle connection not timed out")

let test_journal_warm_restart () =
  let sock = scratch "warm.sock" in
  let jdir = scratch "warm-journal" in
  let cfg = { (test_cfg sock) with Server.journal_dir = Some jdir } in
  Fun.protect
    ~finally:(fun () -> rm_rf jdir)
    (fun () ->
      let cold_body = ref [] in
      with_server cfg (fun _ ->
          with_client sock (fun c ->
              match Client.submit c ~id:"w" ~case_text:(Lazy.force case_text) () with
              | Error e -> Alcotest.fail e
              | Ok r ->
                  Alcotest.(check string) "first run is cold" "cold"
                    r.Proto.r_cache;
                  cold_body := r.Proto.r_body));
      (* Graceful drain unlinked the socket and snapshotted the journal;
         a restarted daemon on the same directory answers warm. *)
      Alcotest.(check bool) "socket removed on drain" false
        (Sys.file_exists sock);
      with_server cfg (fun t ->
          let js = Rcache.journal_stats (Server.cache t) in
          Alcotest.(check bool) "journal replayed at restart" true
            (js.Rcache.replayed_sim >= 1);
          with_client sock (fun c ->
              match Client.submit c ~id:"w2" ~case_text:(Lazy.force case_text) () with
              | Error e -> Alcotest.fail e
              | Ok r ->
                  Alcotest.(check string) "warm restart answers from cache"
                    "sim-hit" r.Proto.r_cache;
                  Alcotest.(check (list string))
                    "warm body byte-identical to the cold body" !cold_body
                    r.Proto.r_body)))

let suite =
  [
    Alcotest.test_case "sim LRU accounting" `Quick test_sim_lru_accounting;
    Alcotest.test_case "sim re-insert dedups" `Quick test_sim_reinsert_dedups;
    Alcotest.test_case "hit body = cold body, all engines" `Quick
      test_hit_matches_cold;
    Alcotest.test_case "machine change pass-hits" `Quick
      test_pass_hit_on_machine_change;
    Alcotest.test_case "cache-key separation" `Quick test_key_separation;
    Alcotest.test_case "poisoned request classified" `Quick
      test_poison_classified;
    Alcotest.test_case "overhead measured" `Quick test_overhead_measured;
    Alcotest.test_case "overhead skip markers" `Quick
      test_overhead_skip_markers;
    Alcotest.test_case "render: overhead never null" `Quick
      test_render_never_null_overhead;
    Alcotest.test_case "full queue answers busy" `Quick
      test_queue_shed_answers_busy;
    Alcotest.test_case "excess connection answers busy" `Quick
      test_conn_shed_answers_busy;
    Alcotest.test_case "oversized request classified" `Quick
      test_oversized_request_classified;
    Alcotest.test_case "idle connection times out" `Quick
      test_idle_timeout_classified;
    Alcotest.test_case "journal warm restart byte-identical" `Quick
      test_journal_warm_restart;
  ]
