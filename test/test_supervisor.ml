module Sup = Spf_harness.Supervisor
module Runner = Spf_harness.Runner
module Engine = Spf_sim.Engine
module Interp = Spf_sim.Interp
module Is = Spf_workloads.Is

(* The supervision pipeline (docs/ROBUSTNESS.md): failure classification,
   bounded exponential backoff, watchdog deadlines firing the cooperative
   cancellation token, and graceful engine degradation. *)

let encode (v : int) = Marshal.to_string v []
let decode s = try Some (Marshal.from_string s 0 : int) with _ -> None

let run_jobs ?policy ?engine ?sleep jobs =
  Sup.run_jobs (Sup.options ?policy ?engine ?sleep ()) ~encode ~decode jobs

let job ?binfo key work = { Sup.key; work; binfo }

let classification =
  Alcotest.testable
    (fun fmt c -> Format.pp_print_string fmt (Sup.classification_to_string c))
    ( = )

let test_classifier () =
  let check msg exn want =
    Alcotest.check classification msg want (Sup.classify exn)
  in
  check "deadline cancellation is a timeout"
    (Spf_sim.Exec_state.Cancelled (Spf_sim.Stats.create ()))
    Sup.Timeout;
  check "compiled-engine decode failure is its own class"
    (Spf_sim.Compile.Decode_error "x")
    Sup.Decode_failure;
  check "tape-engine decode failure is its own class"
    (Spf_sim.Tape.Decode_error "x")
    Sup.Decode_failure;
  check "the transient marker is transient" (Sup.Transient_failure "env")
    Sup.Transient;
  check "resource exhaustion is transient" Out_of_memory Sup.Transient;
  check "OS errors are transient" (Sys_error "disk on fire") Sup.Transient;
  check "simulator traps are deterministic"
    (Spf_sim.Exec_state.Trap { pc = 0; addr = 0; width = 8; is_store = false })
    Sup.Deterministic;
  check "fuel exhaustion is deterministic" Spf_sim.Exec_state.Fuel_exhausted
    Sup.Deterministic;
  check "checksum/verifier failures are deterministic" (Failure "checksum")
    Sup.Deterministic

let test_backoff_bounded () =
  let policy =
    { Sup.default_policy with backoff_base_s = 0.05; backoff_max_s = 0.12 }
  in
  Alcotest.(check (list (float 1e-9)))
    "base * 2^k, capped"
    [ 0.05; 0.1; 0.12; 0.12; 0.12 ]
    (List.map (Sup.backoff_s policy) [ 0; 1; 2; 3; 4 ])

let test_transient_retry_then_success () =
  (* A job that fails transiently twice then succeeds: the supervisor
     must re-run it with recorded backoff sleeps and report success with
     two Retried notes — no real time passes (injected sleep). *)
  let slept = ref [] in
  let sleep s = slept := s :: !slept in
  let attempts = ref 0 in
  let work _ctx =
    incr attempts;
    if !attempts <= 2 then raise (Sup.Transient_failure "flaky");
    41 + 1
  in
  let policy =
    {
      Sup.default_policy with
      retries = 3;
      backoff_base_s = 0.05;
      backoff_max_s = 0.12;
    }
  in
  match run_jobs ~policy ~sleep [ job "t/0" work ] with
  | [ Ok o ] ->
      Alcotest.(check int) "value" 42 o.Sup.value;
      Alcotest.(check int) "attempts" 3 !attempts;
      Alcotest.(check (list (float 1e-9)))
        "recorded backoff sleeps" [ 0.05; 0.1 ] (List.rev !slept);
      Alcotest.(check int) "two retry notes" 2 (List.length o.Sup.notes);
      Alcotest.(check bool) "not resumed" false o.Sup.resumed
  | _ -> Alcotest.fail "expected a single Ok"

let test_retries_exhausted () =
  let sleep _ = () in
  let work _ctx = raise (Sup.Transient_failure "always") in
  let policy = { Sup.default_policy with retries = 2 } in
  match run_jobs ~policy ~sleep [ job "t/0" work ] with
  | [ Error f ] ->
      Alcotest.check classification "class" Sup.Transient f.Sup.f_class;
      Alcotest.(check int) "first try + 2 retries" 3 f.Sup.f_attempts
  | _ -> Alcotest.fail "expected a single Error"

let test_deterministic_not_retried () =
  let sleep _ = Alcotest.fail "deterministic failures must not back off" in
  let work _ctx = failwith "same every time" in
  match run_jobs ~sleep [ job "t/0" work ] with
  | [ Error f ] ->
      Alcotest.check classification "class" Sup.Deterministic f.Sup.f_class;
      Alcotest.(check int) "single attempt" 1 f.Sup.f_attempts
  | _ -> Alcotest.fail "expected a single Error"

(* An infinite IR loop run with the job's cancellation token — the same
   shape as a real runaway simulation, observing cancellation only
   through the engines' poll points. *)
let hang (ctx : Runner.ctx) =
  let b = Spf_ir.Builder.create ~name:"hang" ~nparams:0 in
  let loop = Spf_ir.Builder.new_block b "loop" in
  Spf_ir.Builder.br b loop;
  Spf_ir.Builder.set_block b loop;
  Spf_ir.Builder.br b loop;
  let func = Spf_ir.Builder.finish b in
  let interp =
    Interp.create ~machine:Spf_sim.Machine.haswell ?engine:ctx.Runner.engine
      ?cancel:ctx.Runner.cancel
      ~mem:(Spf_sim.Memory.create ())
      ~args:[||] func
  in
  Interp.run interp;
  0

let test_deadline_fires () =
  let policy =
    { Sup.default_policy with deadline_s = Some 0.2; retries = 0 }
  in
  let t0 = Unix.gettimeofday () in
  match run_jobs ~policy [ job "t/0" hang ] with
  | [ Error f ] ->
      Alcotest.check classification "class" Sup.Timeout f.Sup.f_class;
      Alcotest.(check bool)
        "cancelled in bounded time (not hung)" true
        (Unix.gettimeofday () -. t0 < 30.0);
      Alcotest.(check bool)
        "Cancelled carries stats-so-far" true
        (match f.Sup.f_exn with
        | Spf_sim.Exec_state.Cancelled st ->
            st.Spf_sim.Stats.instructions > 0
        | _ -> false)
  | _ -> Alcotest.fail "expected a single timeout Error"

let test_deadline_spares_fast_jobs () =
  let policy =
    { Sup.default_policy with deadline_s = Some 30.0; retries = 0 }
  in
  match run_jobs ~policy [ job "t/0" (fun _ -> 7) ] with
  | [ Ok o ] -> Alcotest.(check int) "value" 7 o.Sup.value
  | _ -> Alcotest.fail "fast job must beat a generous deadline"

let test_engine_fallback_identical_stats () =
  (* A job whose compiled-engine decode raises must transparently re-run
     on the interpreter and produce the stats the interpreter produces —
     the engines are bit-identical, so the campaign numbers are safe. *)
  let machine = Spf_sim.Machine.haswell in
  let run_is (ctx : Runner.ctx) = Runner.run_ctx ctx ~machine (Is.build Is.default) in
  let work (ctx : Runner.ctx) =
    match ctx.Runner.engine with
    | Some Engine.Interp -> run_is ctx
    | _ -> raise (Spf_sim.Compile.Decode_error "synthetic decode failure")
  in
  let jobs = [ { Sup.key = "t/0"; work; binfo = None } ] in
  let rencode (r : Runner.result) = Marshal.to_string r [] in
  let rdecode s =
    try Some (Marshal.from_string s 0 : Runner.result) with _ -> None
  in
  match
    Sup.run_jobs
      (Sup.options ~engine:Engine.Compiled ())
      ~encode:rencode ~decode:rdecode jobs
  with
  | [ Ok o ] ->
      let direct = run_is (Runner.ctx_of_engine (Some Engine.Interp)) in
      Alcotest.(check bool)
        "fell back (one note)" true
        (match o.Sup.notes with [ Sup.Fell_back _ ] -> true | _ -> false);
      Alcotest.(check bool)
        "stats identical to a direct interp run" true
        (o.Sup.value.Runner.stats = direct.Runner.stats)
  | _ -> Alcotest.fail "expected fallback success"

let test_fallback_chain_tape_to_interp () =
  (* A job whose decode fails on both the tape and the closure engine
     must walk the whole fallback chain (tape -> compiled -> interp),
     leaving one note per step, and still produce the interpreter's
     exact stats. *)
  let machine = Spf_sim.Machine.haswell in
  let run_is (ctx : Runner.ctx) =
    Runner.run_ctx ctx ~machine (Is.build Is.default)
  in
  let work (ctx : Runner.ctx) =
    match ctx.Runner.engine with
    | Some Engine.Interp -> run_is ctx
    | Some Engine.Compiled ->
        raise (Spf_sim.Compile.Decode_error "synthetic compiled failure")
    | _ -> raise (Spf_sim.Tape.Decode_error "synthetic tape failure")
  in
  let jobs = [ { Sup.key = "t/0"; work; binfo = None } ] in
  let rencode (r : Runner.result) = Marshal.to_string r [] in
  let rdecode s =
    try Some (Marshal.from_string s 0 : Runner.result) with _ -> None
  in
  match
    Sup.run_jobs
      (Sup.options ~engine:Engine.Tape ())
      ~encode:rencode ~decode:rdecode jobs
  with
  | [ Ok o ] ->
      let direct = run_is (Runner.ctx_of_engine (Some Engine.Interp)) in
      Alcotest.(check bool)
        "two fallback notes, tape->compiled->interp" true
        (match o.Sup.notes with
        | [
         Sup.Fell_back { from_engine = Engine.Tape; to_engine = Engine.Compiled; _ };
         Sup.Fell_back { from_engine = Engine.Compiled; to_engine = Engine.Interp; _ };
        ] ->
            true
        | _ -> false);
      Alcotest.(check bool)
        "stats identical to a direct interp run" true
        (o.Sup.value.Runner.stats = direct.Runner.stats)
  | _ -> Alcotest.fail "expected chained fallback success"

let test_fallback_disabled_fails () =
  let work _ctx = raise (Spf_sim.Compile.Decode_error "synthetic") in
  let policy = { Sup.default_policy with engine_fallback = false } in
  match run_jobs ~policy ~engine:Engine.Compiled [ job "t/0" work ] with
  | [ Error f ] ->
      Alcotest.check classification "class" Sup.Decode_failure f.Sup.f_class
  | _ -> Alcotest.fail "expected Error with fallback disabled"

let test_interp_decode_failure_not_looped () =
  (* Decode failure on the interpreter (no engine below it) must fail,
     not fall back forever. *)
  let work _ctx = raise (Spf_sim.Compile.Decode_error "synthetic") in
  match run_jobs ~engine:Engine.Interp [ job "t/0" work ] with
  | [ Error f ] ->
      Alcotest.check classification "class" Sup.Decode_failure f.Sup.f_class
  | _ -> Alcotest.fail "expected Error on the bottom engine"

let test_order_preserved () =
  let work i _ctx = i * 10 in
  let jobs = List.init 8 (fun i -> job (Printf.sprintf "t/%d" i) (work i)) in
  let got =
    run_jobs jobs
    |> List.map (function Ok o -> o.Sup.value | Error _ -> -1)
  in
  Alcotest.(check (list int))
    "submission order" [ 0; 10; 20; 30; 40; 50; 60; 70 ] got

let suite =
  [
    Alcotest.test_case "retry classifier over the exception taxonomy" `Quick
      test_classifier;
    Alcotest.test_case "exponential backoff is capped" `Quick
      test_backoff_bounded;
    Alcotest.test_case "transient failures retry then succeed" `Quick
      test_transient_retry_then_success;
    Alcotest.test_case "bounded retries then permanent failure" `Quick
      test_retries_exhausted;
    Alcotest.test_case "deterministic failures are not retried" `Quick
      test_deterministic_not_retried;
    Alcotest.test_case "watchdog cancels a runaway simulation" `Quick
      test_deadline_fires;
    Alcotest.test_case "generous deadline leaves fast jobs alone" `Quick
      test_deadline_spares_fast_jobs;
    Alcotest.test_case "decode failure falls back to identical interp run"
      `Quick test_engine_fallback_identical_stats;
    Alcotest.test_case "tape decode failure walks the whole fallback chain"
      `Quick test_fallback_chain_tape_to_interp;
    Alcotest.test_case "fallback can be disabled by policy" `Quick
      test_fallback_disabled_fails;
    Alcotest.test_case "no fallback below the interpreter" `Quick
      test_interp_decode_failure_not_looped;
    Alcotest.test_case "outcomes come back in submission order" `Quick
      test_order_preserved;
  ]
