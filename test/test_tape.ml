module Ir = Spf_ir.Ir
module Builder = Spf_ir.Builder
module Memory = Spf_sim.Memory
module Interp = Spf_sim.Interp
module Machine = Spf_sim.Machine
module Stats = Spf_sim.Stats
module Engine = Spf_sim.Engine
module Tape = Spf_sim.Tape

(* Corner cases of the micro-op tape engine: superblock seams must not
   coarsen any observable granularity.  A trap inside a superblock, fuel
   running out at a fused micro-op, and cooperative cancellation must all
   leave exactly the stats the classic interpreter leaves — the
   superblock is a decode-time layout trick, not an execution-time
   batching of blocks. *)

let stats_equal what (a : Stats.t) (b : Stats.t) =
  match Stats.first_mismatch a b with
  | None -> ()
  | Some (field, i, t) ->
      Alcotest.failf "%s: stats diverge at %s: interp=%d tape=%d" what field i
        t

(* A straightline four-block chain (entry -> b1 -> b2 -> b3) of
   unconditional branches — the shape superblock formation folds into a
   single tape segment with three seams.  Each block does real work (a
   load) so stats accumulate per block; the last block traps. *)
let chain_trap_func () =
  let b = Builder.create ~name:"chain" ~nparams:1 in
  let a = Builder.param b 0 in
  let b1 = Builder.new_block b "b1" in
  let b2 = Builder.new_block b "b2" in
  let b3 = Builder.new_block b "b3" in
  let v0 = Builder.load b Ir.I32 (Builder.gep b a (Ir.Imm 0) 4) in
  Builder.br b b1;
  Builder.set_block b b1;
  let v1 = Builder.load b Ir.I32 (Builder.gep b a (Ir.Imm 1) 4) in
  Builder.br b b2;
  Builder.set_block b b2;
  let v2 = Builder.load b Ir.I32 (Builder.gep b a (Ir.Imm 2) 4) in
  Builder.br b b3;
  Builder.set_block b b3;
  let bad = Builder.load b Ir.I64 (Ir.Imm max_int) in
  let s = Builder.add b (Builder.add b v0 v1) (Builder.add b v2 bad) in
  Builder.ret b (Some s);
  Builder.finish b

let test_chain_forms_superblock () =
  let p = Tape.get ~tscale:Interp.default_tscale (chain_trap_func ()) in
  Alcotest.(check int) "three interior edges become seams" 3 (Tape.seams p)

let test_trap_mid_superblock () =
  (* The trap sits in the final constituent block of the superblock: the
     three earlier blocks' retired instructions and refreshed cycle
     counter must be visible in the stats-so-far, exactly as the
     interpreter (which never fused the blocks) reports them. *)
  let fault_of engine =
    let mem = Memory.create () in
    let a = Memory.alloc_i32_array mem [| 10; 20; 30; 40 |] in
    let st =
      Interp.create ~machine:Machine.haswell ~engine ~mem ~args:[| a |]
        (chain_trap_func ())
    in
    match Interp.run ~fuel:1000 st with
    | () -> Alcotest.fail "chain did not trap"
    | exception Interp.Trap f -> (f, Interp.stats st)
  in
  let fi, si = fault_of Engine.Interp in
  let ft, st = fault_of Engine.Tape in
  Alcotest.(check int) "same faulting pc" fi.Interp.pc ft.Interp.pc;
  Alcotest.(check int) "same faulting addr" fi.Interp.addr ft.Interp.addr;
  Alcotest.(check bool)
    "same access kind" fi.Interp.is_store ft.Interp.is_store;
  Alcotest.(check bool) "loads retired before the trap" true (si.loads >= 3);
  stats_equal "trap mid-superblock" si st

let test_fuel_exhaustion_at_fused_gep_load () =
  (* b[a[i]]++ compiles with fused GEP+load (and GEP+store) micro-ops.
     Exhaust the fuel mid-loop: the tape and the interpreter must have
     executed the same number of blocks, leaving identical stats, even
     though the tape's loop body retires two instructions per fused
     op. *)
  let run engine =
    let mem = Memory.create () in
    let n = 64 in
    let rng = Spf_workloads.Rng.create ~seed:11 in
    let a =
      Memory.alloc_i32_array mem
        (Array.init n (fun _ -> Spf_workloads.Rng.int rng n))
    in
    let tgt = Memory.alloc mem (4 * n) in
    let st =
      Interp.create ~machine:Machine.haswell ~engine ~mem ~args:[| a; tgt |]
        (Helpers.is_like_kernel ~n)
    in
    match Interp.run ~fuel:25 st with
    | () -> Alcotest.fail "kernel finished inside 25 blocks"
    | exception Interp.Fuel_exhausted -> Interp.stats st
  in
  let si = run Engine.Interp and st = run Engine.Tape in
  Alcotest.(check bool) "made progress before fuel ran out" true
    (si.Stats.instructions > 0);
  stats_equal "fuel exhaustion at fused micro-ops" si st

let test_cancellation_same_block_count () =
  (* A pre-fired token and an infinite arithmetic loop: every engine
     polls at the same 1024-block granularity, so the stats carried by
     [Cancelled] — instruction count included — must be identical across
     all three, tape seams notwithstanding. *)
  let spin () =
    let b = Builder.create ~name:"spin" ~nparams:0 in
    let head = Builder.new_block b "head" in
    let entry = Builder.current_block b in
    Builder.br b head;
    Builder.set_block b head;
    let i = Builder.phi b [ (entry, Ir.Imm 0) ] in
    let i' = Builder.add b i (Ir.Imm 1) in
    Builder.add_incoming b i ~pred:head i';
    Builder.br b head;
    Builder.finish b
  in
  let cancelled_stats engine =
    let cancel = Interp.new_cancel () in
    Interp.fire_cancel cancel;
    let st =
      Interp.create ~machine:Machine.haswell ~engine ~cancel
        ~mem:(Memory.create ()) ~args:[||] (spin ())
    in
    match Interp.run ~fuel:1_000_000 st with
    | () -> Alcotest.fail "infinite loop returned"
    | exception Interp.Cancelled stats -> stats
  in
  let si = cancelled_stats Engine.Interp in
  Alcotest.(check bool) "blocks ran before the poll" true
    (si.Stats.instructions > 0);
  stats_equal "cancellation block count (compiled)" si
    (cancelled_stats Engine.Compiled);
  stats_equal "cancellation block count (tape)" si
    (cancelled_stats Engine.Tape)

let test_decode_cache_across_tscale () =
  (* The decode cache is keyed by (tscale, signature): structurally
     identical functions share a tape, but a tape decoded at one tscale
     is never served at another — latencies are pre-scaled into the
     tape, so that would corrupt every timing number. *)
  let f () = Helpers.sum_kernel ~n:24 in
  let h0, m0 = Tape.cache_counters () in
  let p_a = Tape.get ~tscale:7 (f ()) in
  let p_a' = Tape.get ~tscale:7 (f ()) in
  let p_b = Tape.get ~tscale:9 (f ()) in
  let h1, m1 = Tape.cache_counters () in
  Alcotest.(check bool) "structural re-decode hits" true (p_a == p_a');
  Alcotest.(check bool) "tscale change misses" true (not (p_b == p_a));
  Alcotest.(check bool) "hit counted" true (h1 > h0);
  Alcotest.(check bool) "two misses counted" true (m1 >= m0 + 2);
  let p_a'' = Tape.get ~tscale:7 (f ()) in
  Alcotest.(check bool) "original tscale still cached" true (p_a'' == p_a)

let suite =
  [
    Alcotest.test_case "unconditional chain forms one superblock" `Quick
      test_chain_forms_superblock;
    Alcotest.test_case "trap mid-superblock keeps interp stats" `Quick
      test_trap_mid_superblock;
    Alcotest.test_case "fuel exhaustion at fused gep+load" `Quick
      test_fuel_exhaustion_at_fused_gep_load;
    Alcotest.test_case "cancellation at identical block count" `Quick
      test_cancellation_same_block_count;
    Alcotest.test_case "decode cache keyed by tscale" `Quick
      test_decode_cache_across_tscale;
  ]
