module Ir = Spf_ir.Ir
module Term = Spf_valid.Term
module Prove = Spf_valid.Prove

(* The validator's term algebra and entailment prover.  Soundness here is
   load-bearing for the whole of lib/valid: a wrong normalization or a
   prover that "proves" a falsehood silently turns refutations into
   proofs. *)

let t =
  Alcotest.testable
    (fun fmt x -> Format.pp_print_string fmt (Term.to_string x))
    Term.equal
let i = Term.of_int
let s = Term.sym

let test_linear_normalization () =
  Alcotest.check t "x + y = y + x" (Term.add (s 1) (s 2)) (Term.add (s 2) (s 1));
  Alcotest.check t "x - x = 0" Term.zero (Term.sub (s 1) (s 1));
  Alcotest.check t "2x + 3 + x = 3x + 3"
    (Term.add_const 3 (Term.mul_const 3 (s 1)))
    (Term.add (Term.add_const 3 (Term.mul_const 2 (s 1))) (s 1));
  Alcotest.(check (option int))
    "constants fold" (Some 12)
    (Term.as_const (Term.binop Ir.Mul (i 3) (i 4)))

let test_binop_folding_matches_interp () =
  (* The interpreter computes in OCaml native ints; the term layer must
     fold to the very same values. *)
  List.iter
    (fun (op, a, b, expected) ->
      Alcotest.(check (option int))
        (Ir.string_of_binop op) (Some expected)
        (Term.as_const (Term.binop op (i a) (i b))))
    [
      (Ir.Add, 7, -3, 4);
      (Ir.Sub, 7, -3, 10);
      (Ir.Mul, -4, 6, -24);
      (Ir.Sdiv, 7, 2, 3);
      (Ir.Srem, 7, 2, 1);
      (Ir.And, 0b1100, 0b1010, 0b1000);
      (Ir.Or, 0b1100, 0b1010, 0b1110);
      (Ir.Xor, 0b1100, 0b1010, 0b0110);
      (Ir.Shl, 3, 4, 48);
      (Ir.Lshr, 48, 4, 3);
      (Ir.Ashr, -16, 2, -4);
      (Ir.Smin, 3, -5, -5);
      (Ir.Smax, 3, -5, 3);
    ]

let test_symbolic_shift_is_multiplication () =
  Alcotest.check t "x << 3 = 8x"
    (Term.mul_const 8 (s 1))
    (Term.binop Ir.Shl (s 1) (i 3))

let test_symbolic_division_raises () =
  Alcotest.check_raises "x / y" Term.Symbolic_division (fun () ->
      ignore (Term.binop Ir.Sdiv (s 1) (s 2)));
  Alcotest.check_raises "1 / 0" Term.Symbolic_division (fun () ->
      ignore (Term.binop Ir.Sdiv (i 1) (i 0)))

let test_min_max_folding () =
  Alcotest.check t "min(x, x) = x" (s 1) (Term.smin (s 1) (s 1));
  Alcotest.check t "min(x+1, x+4) = x+1"
    (Term.add_const 1 (s 1))
    (Term.smin (Term.add_const 1 (s 1)) (Term.add_const 4 (s 1)));
  (* Argument order is canonicalized, so both sides of the lockstep
     checker build one atom. *)
  Alcotest.check t "min commutes" (Term.smin (s 1) (s 2)) (Term.smin (s 2) (s 1))

let test_cmp_normalization () =
  (* sgt/sge are rewritten to slt/sle with swapped operands; eq/ne get a
     canonical sign.  All four spellings of the same predicate must
     produce the same atom. *)
  Alcotest.check t "x < y  =  y > x"
    (Term.cmp Ir.Slt (s 1) (s 2))
    (Term.cmp Ir.Sgt (s 2) (s 1));
  Alcotest.check t "x = y  =  y = x"
    (Term.cmp Ir.Eq (s 1) (s 2))
    (Term.cmp Ir.Eq (s 2) (s 1));
  Alcotest.(check (option int))
    "3 < 5 folds to 1" (Some 1)
    (Term.as_const (Term.cmp Ir.Slt (i 3) (i 5)))

let test_select_folding () =
  Alcotest.check t "sel(1, a, b) = a" (s 1) (Term.select Term.one (s 1) (s 2));
  Alcotest.check t "sel(0, a, b) = b" (s 2) (Term.select Term.zero (s 1) (s 2));
  Alcotest.check t "sel(c, a, a) = a" (s 1) (Term.select (s 9) (s 1) (s 1))

let test_subst_sym_renormalizes () =
  (* (x + 2y)[y := 3] = x + 6, rebuilt through the smart constructors. *)
  let e = Term.add (s 1) (Term.mul_const 2 (s 2)) in
  Alcotest.check t "substitution folds"
    (Term.add_const 6 (s 1))
    (Term.subst_sym 2 ~by:(i 3) e);
  (* min collapses once its arguments become comparable. *)
  let m = Term.smin (s 1) (Term.add_const 5 (s 2)) in
  Alcotest.check t "min collapses under subst" (i 4)
    (Term.subst_sym 1 ~by:(i 4) (Term.subst_sym 2 ~by:(i 7) m))

let test_unify_linear () =
  (* pat = base + 4·var against target = base + 4·(i+64). *)
  let base = s 1 and iv = 2 in
  let pat = Term.add base (Term.mul_const 4 (s iv)) in
  let u = Term.add_const 64 (s 3) in
  let target = Term.add base (Term.mul_const 4 u) in
  (match Term.unify ~pat ~target ~var:iv with
  | Some got -> Alcotest.check t "linear solution" u got
  | None -> Alcotest.fail "linear unify failed");
  (* Non-multiple difference must not unify. *)
  let target_bad = Term.add_const 2 target in
  Alcotest.(check bool)
    "misaligned target rejected" true
    (Term.unify ~pat ~target:target_bad ~var:iv = None)

let test_unify_through_read () =
  (* mem[a + 4·var] against mem[a + 4·U]: structural descent through the
     read atom — the shape of every indirect coverage check. *)
  let a = s 1 and iv = 2 in
  let mk idx =
    Term.read ~ver:0 ~addr:(Term.add a (Term.mul_const 4 idx)) ~ty:Ir.I32
  in
  let u = Term.smin (Term.add_const 64 (s 3)) (s 4) in
  match Term.unify ~pat:(mk (s iv)) ~target:(mk u) ~var:iv with
  | Some got -> Alcotest.check t "nested solution" u got
  | None -> Alcotest.fail "unify through Aread failed"

let test_unify_both_arms_mention_var () =
  (* xor (k, lshr (k, 3)) — a hash where both operands mention the
     unknown; the solutions from each arm must agree. *)
  let iv = 2 in
  let hash x = Term.binop Ir.Xor x (Term.binop Ir.Lshr x (i 3)) in
  let u = s 7 in
  (match Term.unify ~pat:(hash (s iv)) ~target:(hash u) ~var:iv with
  | Some got -> Alcotest.check t "hash solution" u got
  | None -> Alcotest.fail "unify through both-arm op failed");
  (* Conflicting solutions in the two arms must fail. *)
  let pat = Term.binop Ir.Xor (s iv) (Term.binop Ir.Lshr (s iv) (i 3)) in
  let target = Term.binop Ir.Xor (s 7) (Term.binop Ir.Lshr (s 8) (i 3)) in
  Alcotest.(check bool)
    "conflicting arms rejected" true
    (Term.unify ~pat ~target ~var:iv = None)

let test_unify_pure_call () =
  (* Pure calls are uninterpreted functions: f(var) against f(U). *)
  let iv = 2 in
  let f x = Term.call "mix" [ x; i 5 ] in
  let u = Term.add_const 1 (s 3) in
  (match Term.unify ~pat:(f (s iv)) ~target:(f u) ~var:iv with
  | Some got -> Alcotest.check t "call solution" u got
  | None -> Alcotest.fail "unify through Acall failed");
  Alcotest.(check bool)
    "different callee rejected" true
    (Term.unify
       ~pat:(Term.call "mix" [ s iv ])
       ~target:(Term.call "hash" [ s 3 ])
       ~var:iv
    = None)

let test_prover_linear () =
  let facts = [ s 1; Term.sub (s 2) (s 1) ] in
  (* x >= 0, y - x >= 0  |-  y >= 0. *)
  Alcotest.(check bool) "transitivity" true (Prove.prove_ge0 ~facts (s 2));
  (* ... but not y - 1 >= 0. *)
  Alcotest.(check bool)
    "sound incompleteness" false
    (Prove.prove_ge0 ~facts (Term.add_const (-1) (s 2)))

let test_prover_min_split () =
  (* n - 1 - min(i + 64, n - 1) >= 0 given i >= 0 and n >= 1: the §4.2
     clamp obligation, needing a case split on the min. *)
  let iv = s 1 and n = s 2 in
  let facts = [ iv; Term.add_const (-1) n ] in
  let clamped = Term.smin (Term.add_const 64 iv) (Term.add_const (-1) n) in
  Alcotest.(check bool)
    "clamped index below bound" true
    (Prove.prove_ge0 ~facts (Term.sub (Term.add_const (-1) n) clamped));
  Alcotest.(check bool)
    "clamped index non-negative" true
    (Prove.prove_ge0 ~facts:(Term.add_const 64 iv :: facts) clamped);
  (* Drop the i >= 0 fact and the second goal must fail: min(i+64, n-1)
     can be negative. *)
  Alcotest.(check bool)
    "unprovable without the fact" false
    (Prove.prove_ge0 ~facts:[ Term.add_const (-1) n ] clamped)

let test_prover_assert_cond () =
  (* Facts from branching on (i < n): taken means n - i - 1 >= 0. *)
  let c = Term.cmp Ir.Slt (s 1) (s 2) in
  let taken = Prove.assert_cond c true in
  Alcotest.(check bool)
    "branch fact implies i <= n - 1" true
    (Prove.prove_ge0 ~facts:taken
       (Term.sub (Term.add_const (-1) (s 2)) (s 1)))

let suite =
  [
    Alcotest.test_case "linear normalization" `Quick test_linear_normalization;
    Alcotest.test_case "binop folding matches the interpreter" `Quick
      test_binop_folding_matches_interp;
    Alcotest.test_case "symbolic shift is multiplication" `Quick
      test_symbolic_shift_is_multiplication;
    Alcotest.test_case "symbolic division raises" `Quick
      test_symbolic_division_raises;
    Alcotest.test_case "min/max folding" `Quick test_min_max_folding;
    Alcotest.test_case "compare normalization" `Quick test_cmp_normalization;
    Alcotest.test_case "select folding" `Quick test_select_folding;
    Alcotest.test_case "substitution renormalizes" `Quick
      test_subst_sym_renormalizes;
    Alcotest.test_case "unify: linear" `Quick test_unify_linear;
    Alcotest.test_case "unify: through memory reads" `Quick
      test_unify_through_read;
    Alcotest.test_case "unify: both arms mention the variable" `Quick
      test_unify_both_arms_mention_var;
    Alcotest.test_case "unify: pure calls" `Quick test_unify_pure_call;
    Alcotest.test_case "prover: linear entailment" `Quick test_prover_linear;
    Alcotest.test_case "prover: min case split" `Quick test_prover_min_split;
    Alcotest.test_case "prover: branch facts" `Quick test_prover_assert_cond;
  ]
