module Ir = Spf_ir.Ir
module Config = Spf_core.Config
module Memory = Spf_sim.Memory
module Gen = Spf_fuzz.Gen
module Oracle = Spf_fuzz.Oracle
module Replay = Spf_fuzz.Replay
module Bundle = Spf_harness.Bundle
module Case = Spf_valid.Case
module Model = Spf_valid.Model
module Validate = Spf_valid.Validate

(* End-to-end translation validation: proof on the sound pass,
   counterexample (confirmed, runnable, replayable) on a deliberately
   unsound variant. *)

let spec =
  {
    Gen.shape = Gen.Indirect;
    n = 48;
    inner = 1;
    len_a = 16;
    bound = Gen.Bound_param;
    tight = true;
    alias_store = false;
    hash_depth = 1;
    data_seed = 5;
  }

let env_of_spec s =
  {
    Model.fresh =
      (fun () ->
        let b = Gen.build s in
        (b.Gen.mem, b.Gen.args));
    fuel = Gen.fuel s;
  }

(* An unsound pass config: a huge assume_margin skips the §4.2 clamp. *)
let broken = { Config.default with Config.assume_margin = 1 lsl 30 }

let transform_with config func =
  match Validate.transform ~config func with
  | Ok x -> x
  | Error e -> Alcotest.failf "pass raised: %s" e

let test_proves_sound_pass () =
  let orig = (Gen.build spec).Gen.func in
  let xform = transform_with Config.default orig in
  match Validate.check ~env:(env_of_spec spec) ~orig ~xform () with
  | Validate.Proved { paths; obligations } ->
      Alcotest.(check bool) "at least one path" true (paths > 0);
      Alcotest.(check bool) "at least one obligation" true (obligations > 0)
  | o -> Alcotest.failf "expected a proof, got: %s" (Validate.outcome_to_string o)

let test_refutes_unsound_margin () =
  (* The tight layout puts the index array flush against the mapping
     break, so the unclamped look-ahead load must trap — a confirmed,
     introduced fault. *)
  let orig = (Gen.build spec).Gen.func in
  let xform = transform_with broken orig in
  match Validate.check ~env:(env_of_spec spec) ~orig ~xform () with
  | Validate.Refuted { cex; case; _ } ->
      Alcotest.(check bool)
        "fault at a pass-inserted instruction" true
        cex.Model.introduced_fault;
      (* The printed counterexample is a runnable case: parse it back and
         re-validate under the broken config — it must refute again. *)
      let reloaded = Case.parse (Case.to_string case) in
      (match Validate.check_case ~config:broken reloaded with
      | Validate.Refuted _ -> ()
      | o ->
          Alcotest.failf "reloaded case did not refute: %s"
            (Validate.outcome_to_string o))
  | o ->
      Alcotest.failf "expected a refutation, got: %s"
        (Validate.outcome_to_string o)

let test_case_round_trip () =
  let b = Gen.build spec in
  let case =
    Case.of_concrete ~func:b.Gen.func ~mem:b.Gen.mem ~args:b.Gen.args
      ~fuel:(Gen.fuel spec)
  in
  let case' = Case.parse (Case.to_string case) in
  Alcotest.(check (array int)) "args" case.Case.args case'.Case.args;
  Alcotest.(check int) "brk" case.Case.brk case'.Case.brk;
  Alcotest.(check int) "fuel" case.Case.fuel case'.Case.fuel;
  (* The environment rebuilt from the parsed case is bit-identical. *)
  let mem0, _ = Case.to_env case |> fun e -> e.Model.fresh () in
  let mem1, _ = Case.to_env case' |> fun e -> e.Model.fresh () in
  Alcotest.(check string) "memory image" (Memory.digest mem0)
    (Memory.digest mem1);
  (* And the reloaded pair still proves. *)
  match Validate.check_case case' with
  | Validate.Proved _ -> ()
  | o -> Alcotest.failf "reloaded case: %s" (Validate.outcome_to_string o)

let test_symbolic_oracle_agrees_and_diverges () =
  (match Oracle.check_symbolic spec with
  | Oracle.Agree _ -> ()
  | Oracle.Diverged d ->
      Alcotest.failf "sound pass diverged: %s" (Oracle.divergence_to_string d)
  | Oracle.Undecided r -> Alcotest.failf "undecided: %s" r);
  match Oracle.check_symbolic ~config:broken spec with
  | Oracle.Diverged _ -> ()
  | Oracle.Agree _ -> Alcotest.fail "unsound margin not caught"
  | Oracle.Undecided r -> Alcotest.failf "undecided on unsound margin: %s" r

let test_replay_rejects_unknown_mode () =
  (* A bundle recording an oracle mode this build does not know must
     fail with a clear message, not misreport Clean/Divergence. *)
  let root = Filename.get_temp_dir_name () in
  let payload = Replay.payload ~mode:(Oracle.Concrete None) spec in
  let forged = { payload with Replay.bp_mode = "quantum" } in
  let bdir =
    Bundle.write ~root ~name:"spf-test-unknown-mode"
      ~meta:(Replay.meta_of_payload forged)
      ~payload:(Replay.encode_payload forged)
      ()
  in
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  (match Replay.replay (Bundle.read bdir) with
  | exception Failure msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message names the mode: %s" msg)
        true
        (contains ~sub:"quantum" msg)
  | r ->
      Alcotest.failf "expected Failure, got %s"
        (match r with
        | Replay.Clean -> "Clean"
        | Replay.Divergence d -> "Divergence " ^ d
        | Replay.Undecided u -> "Undecided " ^ u));
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote bdir)))

let test_golden_spot_check () =
  (* One golden pair proved through the same entry point the CLI batch
     uses; the full sweep is the @validate-smoke tier-1 alias. *)
  let results = Validate.check_golden () in
  Alcotest.(check bool) "has results" true (List.length results >= 6);
  List.iter
    (fun (name, o) ->
      match o with
      | Validate.Proved _ -> ()
      | _ -> Alcotest.failf "%s: %s" name (Validate.outcome_to_string o))
    results

let suite =
  [
    Alcotest.test_case "proves the sound pass" `Quick test_proves_sound_pass;
    Alcotest.test_case "refutes an unsound margin with a confirmed fault"
      `Quick test_refutes_unsound_margin;
    Alcotest.test_case "case files round-trip" `Quick test_case_round_trip;
    Alcotest.test_case "symbolic oracle: agree and diverge" `Quick
      test_symbolic_oracle_agrees_and_diverges;
    Alcotest.test_case "replay rejects unknown oracle modes" `Quick
      test_replay_rejects_unknown_mode;
    Alcotest.test_case "golden pairs all prove" `Slow test_golden_spot_check;
  ]
